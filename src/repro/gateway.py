"""Asyncio gateway: the traffic-shaped front door of the serve tier.

:class:`repro.serve.WorkerPool` ends at a blocking single-host Python
API.  This module adds everything between that API and real traffic:

- **request coalescing** — concurrent single-seed requests arriving
  within a short window are merged into one batched
  ``query_many`` / ``query_topk_many`` call (the batched engine paths are
  ≥2x over looped single queries), so a thousand independent clients get
  the throughput of a well-batched one;
- **admission control** — when the number of in-flight requests reaches
  ``max_pending`` (or every backend reports a queue deeper than
  ``shed_queue_depth``), new arrivals are *shed* with a typed
  :class:`Overloaded` instead of queueing unboundedly — bounded p99 for
  the traffic that is admitted;
- **sharding + failover** — backends (local pools or remote
  ``repro serve --listen`` endpoints speaking :mod:`repro.wire`) sit on a
  consistent-hash ring; each seed routes to its shard's backend, and
  connect/timeout failures fail over to the next replica on the ring.
  Immutable artifact generations make every replica answer bit-identically,
  so failover is invisible to callers;
- **telemetry** — request latency histograms, coalesce batch sizes, shed
  and failover counters, and per-backend health/queue-depth gauges, all
  through the existing :mod:`repro.telemetry` registry
  (``rwr.gateway.*``).

Topology::

    clients ──wire──> GatewayServer ──> Gateway ──wire──> PoolServer ──> WorkerPool   (host A)
                                            └─────wire──> PoolServer ──> WorkerPool   (host B)

or, single-box, a :class:`LocalBackend` wraps the pool in-process and the
wire hops disappear.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from bisect import bisect_right
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry, tracing, wire
from repro.core.topk import to_pairs, validate_k
from repro.exceptions import InvalidParameterError
from repro.serve import DeadlineExpired, WorkerPool, WorkerError
from repro.telemetry import MetricsRegistry

#: Seconds a flush timer waits for more requests to coalesce.
DEFAULT_COALESCE_WINDOW = 0.002

#: In-flight requests admitted before the gateway starts shedding.
DEFAULT_MAX_PENDING = 1024

#: Seconds between backend health/queue-depth polls.
DEFAULT_HEALTH_INTERVAL = 1.0

#: Seconds a backend stays deprioritized after a transport failure.
DEFAULT_FAILOVER_COOLDOWN = 2.0

#: Seconds the gateway waits for one backend call before failing over.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: Virtual points per backend on the consistent-hash ring.
DEFAULT_RING_POINTS = 64

#: Consecutive transport failures before a backend's breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds an open breaker waits before allowing a half-open probe.
DEFAULT_BREAKER_RESET = 2.0

#: Retry-budget tokens accrued per admitted request (≈ max retry ratio).
DEFAULT_RETRY_RATIO = 0.1

#: Retry-budget bucket capacity (burst of retries tolerated from idle).
DEFAULT_RETRY_BURST = 10.0

#: Schema identifier of :meth:`Gateway.fleet_snapshot` documents.
FLEET_SCHEMA = "repro-fleet/v1"


def compute_retry_after(pending: int, limit: int, base: float) -> float:
    """Retry hint for an :class:`Overloaded` shed: backlog-scaled + jittered.

    The hint grows with how far over the limit the backlog is (a gateway
    at 4x its limit needs longer than one just past it), and carries
    ±25% uniform jitter so the clients that were all shed in the same
    instant do not come back in the same instant — the synchronized-retry
    thundering herd simply re-creates the overload.
    """
    depth_factor = max(float(pending) / float(max(limit, 1)), 1.0)
    return float(base) * depth_factor * random.uniform(0.75, 1.25)


class Overloaded(RuntimeError):
    """The gateway shed this request under backpressure.

    Typed (rather than a generic error string) so clients and the wire
    layer can distinguish "retry shortly" from "this request is wrong":
    the request was never queued, and retrying after ``retry_after``
    seconds is expected to succeed once the backlog drains.
    """

    def __init__(self, pending: int, limit: int, retry_after: float = 0.05):
        super().__init__(
            f"gateway overloaded: {pending} pending request(s) at limit {limit}"
        )
        self.pending = int(pending)
        self.limit = int(limit)
        self.retry_after = float(retry_after)


class BackendError(RuntimeError):
    """A backend failed at the transport level (connect/timeout/closed).

    This is the *retriable* failure class — the gateway fails over to the
    next replica on the ring.  Callers only see it when every replica of a
    shard failed.
    """


class QueryError(RuntimeError):
    """The backend answered with an application error (bad seed, bad k).

    Retrying the identical request on a replica would fail identically,
    so this propagates to the caller without failover.
    """


def parse_endpoint(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--listen`` / ``--backend`` format)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise InvalidParameterError(
            f"endpoint must look like HOST:PORT, got {text!r}"
        )
    return host, int(port)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
def _hash64(text: str) -> int:
    """Deterministic 64-bit hash (Python's ``hash`` is salted per process)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over backend names.

    Each backend owns ``points`` pseudo-random positions on a 64-bit
    ring; a seed routes to the backend owning the first position at or
    after the seed's hash.  Adding or removing one backend therefore
    remaps only ~1/n of the seeds — the cache-locality property that
    makes per-backend top-k caches effective behind the gateway.  Hashes
    come from BLAKE2b, so routing is deterministic across processes and
    runs (unlike the salted builtin ``hash``).
    """

    def __init__(self, names: Sequence[str], points: int = DEFAULT_RING_POINTS):
        names = list(names)
        if not names:
            raise InvalidParameterError("hash ring needs at least one backend")
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"backend names must be unique, got {names}")
        self.names = names
        entries: List[Tuple[int, str]] = []
        for name in names:
            for point in range(points):
                entries.append((_hash64(f"{name}#{point}"), name))
        entries.sort()
        self._keys = [key for key, _ in entries]
        self._owners = [name for _, name in entries]

    def route(self, seed: int) -> str:
        """The backend name owning ``seed``'s shard."""
        return self.order(seed)[0]

    def order(self, seed: int) -> List[str]:
        """Every distinct backend in ring order starting at ``seed``'s
        position — the failover chain (primary first)."""
        start = bisect_right(self._keys, _hash64(str(int(seed))))
        seen: Dict[str, None] = {}
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in seen:
                seen[owner] = None
                if len(seen) == len(self.names):
                    break
        return list(seen)


# ----------------------------------------------------------------------
# Failure containment primitives
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-backend circuit breaker: closed → open → half-open → closed.

    *Closed* (healthy): calls flow; ``failure_threshold`` **consecutive**
    transport failures trip it open.  *Open*: every call is rejected
    without touching the backend, so a dead host costs a dict lookup
    instead of a connect timeout per request.  After ``reset_timeout``
    seconds the breaker turns *half-open*: exactly one probe call is let
    through — success closes the breaker, failure re-opens it for another
    ``reset_timeout``.  Application errors (bad seed, overload) never
    count: the transport worked, so they *reset* the failure streak.

    State is re-derived from the clock on read (no timers to leak); the
    caller reports outcomes via :meth:`record_success` /
    :meth:`record_failure` after every allowed call.
    """

    CLOSED, HALF_OPEN, OPEN = 0, 1, 2
    _STATE_NAMES = {0: "closed", 1: "half-open", 2: "open"}

    def __init__(
        self,
        failure_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        reset_timeout: float = DEFAULT_BREAKER_RESET,
    ):
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise InvalidParameterError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> int:
        if self._opened_at is None:
            return self.CLOSED
        if time.monotonic() - self._opened_at >= self.reset_timeout:
            return self.HALF_OPEN
        return self.OPEN

    @property
    def state_name(self) -> str:
        return self._STATE_NAMES[self.state]

    def allow(self) -> bool:
        """May a call go to this backend right now?

        In the half-open state only the first caller gets a True (the
        probe); concurrent callers are rejected until the probe reports.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        probing = self._probing
        self._probing = False
        self._failures += 1
        if (
            self._opened_at is not None and probing
        ) or self._failures >= self.failure_threshold:
            # Trip (or re-trip after a failed half-open probe): the reset
            # clock restarts now.
            self._opened_at = time.monotonic()


class RetryBudget:
    """Token bucket bounding failover retries to a fraction of traffic.

    Every admitted request accrues ``ratio`` tokens (capped at ``burst``);
    every retry — a failover to the next replica, or a hedged duplicate —
    spends one whole token.  Under a failover storm (say a backend dies
    with hundreds of requests in flight) the bucket drains after ``burst``
    retries and the rest fail fast instead of doubling the load on the
    survivors, which is exactly how retry amplification turns one dead
    replica into a fleet-wide outage.
    """

    def __init__(
        self,
        ratio: float = DEFAULT_RETRY_RATIO,
        burst: float = DEFAULT_RETRY_BURST,
    ):
        if ratio < 0:
            raise InvalidParameterError(f"ratio must be >= 0, got {ratio}")
        if burst < 0:
            # burst == 0 is a legitimate ops knob: no retries, ever.
            raise InvalidParameterError(f"burst must be >= 0, got {burst}")
        self.ratio = float(ratio)
        self.burst = float(burst)
        self._tokens = float(burst)

    @property
    def tokens(self) -> float:
        return self._tokens

    def accrue(self) -> None:
        self._tokens = min(self._tokens + self.ratio, self.burst)

    def try_spend(self) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class GatewayResult:
    """One answered gateway request: the value plus its degradation tag.

    ``value`` is the dense score row (``mode="dense"``) or the packed
    top-k pair records.  ``degraded`` marks a best-effort answer served
    from the stale answer cache or the Monte-Carlo fallback instead of an
    exact backend solve; ``error_bound`` is its per-entry L∞ bound
    (``0.0`` for exact answers and stale-cache answers, which are exact
    for a possibly older generation).
    """

    value: Any
    degraded: bool = False
    error_bound: float = 0.0
    #: Which degradation rung served the answer: ``"cache"``, ``"approx"``,
    #: or ``""`` for an exact backend solve.
    source: str = ""


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class LocalBackend:
    """A :class:`~repro.serve.WorkerPool` adapted to the async backend API.

    Pool calls are blocking and the pool's supervised collection loop is
    written for one caller at a time, so every call funnels through a
    dedicated single-thread executor — the coalescer batches concurrency
    *before* this point, so serialization costs nothing.
    """

    def __init__(self, pool: WorkerPool, name: str = "local"):
        self.pool = pool
        self.name = name
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"gw-backend-{name}"
        )
        self._inflight = 0

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        self._inflight += 1
        try:
            return await loop.run_in_executor(self._executor, partial(fn, *args))
        except DeadlineExpired:
            # Keep the type: the gateway degrades on this, not fails.
            raise
        except (WorkerError, InvalidParameterError) as exc:
            raise QueryError(f"{type(exc).__name__}: {exc}") from exc
        finally:
            self._inflight -= 1

    async def query_many(
        self,
        seeds: Sequence[int],
        trace: Sequence[Tuple[int, int]] = (),
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        return await self._run(
            partial(
                self.pool.query_many, list(seeds), trace=list(trace) or None,
                deadline_ms=deadline_ms,
            )
        )

    async def query_topk_many(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool,
        trace: Sequence[Tuple[int, int]] = (),
        deadline_ms: Optional[float] = None,
    ) -> List[np.ndarray]:
        results = await self._run(
            partial(
                self.pool.query_topk_many, list(seeds), k, exclude_seed,
                trace=list(trace) or None, deadline_ms=deadline_ms,
            )
        )
        return [to_pairs(result) for result in results]

    async def stats(self) -> Dict[str, Any]:
        stats = await self._run(self.pool.pool_stats)
        pool_depth = stats.get("queue_depth") or 0
        return {
            "queue_depth": int(pool_depth) + self._inflight,
            "generation": stats.get("generation"),
            "n_workers": stats.get("n_workers"),
            "queries_submitted": stats.get("queries_submitted"),
        }

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """The pool's merged telemetry snapshot (fleet aggregation feed)."""
        registry = await self._run(self.pool.metrics)
        return registry.snapshot()

    async def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalBackend({self.name!r})"


class RemoteBackend:
    """A ``repro serve --listen`` endpoint reached over :mod:`repro.wire`.

    One persistent connection, reopened lazily after any failure; requests
    are serialized per connection (the protocol is strictly
    request/reply), which matches the server side funneling into one
    worker-pool dispatcher anyway.  Transport failures surface as
    :class:`BackendError` (→ ring failover); ``REPLY_ERROR`` frames
    surface as :class:`QueryError` (→ propagate); ``REPLY_OVERLOADED``
    frames surface as :class:`Overloaded`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: Optional[str] = None,
        connect_timeout: float = 5.0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.host = host
        self.port = int(port)
        self.name = name if name is not None else f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass

    async def _call(self, message: wire.Request) -> wire.Reply:
        async with self._lock:
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.connect_timeout,
                    )
                # endpoint= routes this connection's frames through the
                # fault injector (chaos drills); timeout= bounds every
                # *partial* read, so a peer that accepts but never sends a
                # complete frame cannot hold the call past the budget.
                await wire.write_message(
                    self._writer, message, endpoint=self.name
                )
                reply = await asyncio.wait_for(
                    wire.read_message(
                        self._reader,
                        timeout=self.request_timeout,
                        endpoint=self.name,
                    ),
                    self.request_timeout,
                )
            except (OSError, TimeoutError, wire.ProtocolError) as exc:
                await self._drop_connection()
                raise BackendError(
                    f"backend {self.name}: {type(exc).__name__}: {exc}"
                ) from exc
            except asyncio.CancelledError:
                # Cancelled mid-exchange (e.g. a bounded fleet-metrics
                # poll): the reply is still in flight, so the connection
                # is desynchronized for whoever uses it next.  Drop it.
                await self._drop_connection()
                raise
            if reply is None:
                await self._drop_connection()
                raise BackendError(f"backend {self.name}: connection closed")
        if isinstance(reply, wire.ErrorReply):
            if reply.message.startswith("DeadlineExpired"):
                # The server-side pool dropped the task as expired;
                # re-typed so the gateway degrades instead of failing.
                raise DeadlineExpired(reply.message)
            raise QueryError(reply.message)
        if isinstance(reply, wire.OverloadedReply):
            raise Overloaded(
                pending=reply.pending,
                limit=reply.limit,
                retry_after=reply.retry_after,
            )
        return reply

    async def query_many(
        self,
        seeds: Sequence[int],
        trace: Sequence[Tuple[int, int]] = (),
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        reply = await self._call(
            wire.QueryRequest(
                seeds=np.asarray(list(seeds), dtype=np.int64),
                trace=tuple(trace),
                deadline_ms=deadline_ms,
            )
        )
        if not isinstance(reply, wire.DenseReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        self._absorb_trace(reply.trace_records)
        return reply.scores

    async def query_topk_many(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool,
        trace: Sequence[Tuple[int, int]] = (),
        deadline_ms: Optional[float] = None,
    ) -> List[np.ndarray]:
        reply = await self._call(
            wire.TopKRequest(
                seeds=np.asarray(list(seeds), dtype=np.int64),
                k=int(k),
                exclude_seed=bool(exclude_seed),
                trace=tuple(trace),
                deadline_ms=deadline_ms,
            )
        )
        if not isinstance(reply, wire.TopKReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        self._absorb_trace(reply.trace_records)
        return reply.pairs

    @staticmethod
    def _absorb_trace(records: Sequence[Dict[str, Any]]) -> None:
        """Fold the server-side span records of a traced reply into this
        process's tracer — the gateway's ring ends up holding the whole
        cross-host trace."""
        if records:
            tracing.get_tracer().absorb(records)

    async def stats(self) -> Dict[str, Any]:
        reply = await self._call(wire.StatsRequest())
        if not isinstance(reply, wire.StatsReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        return reply.stats

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """The backend's merged telemetry snapshot via ``OP_METRICS``."""
        reply = await self._call(wire.MetricsRequest())
        if not isinstance(reply, wire.StatsReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        return reply.stats

    async def close(self) -> None:
        async with self._lock:
            await self._drop_connection()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteBackend({self.name!r})"


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class Gateway:
    """Coalescing, shedding, sharding front door over one or more backends.

    Parameters
    ----------
    backends:
        :class:`LocalBackend` / :class:`RemoteBackend` instances (anything
        with ``name``, ``query_many``, ``query_topk_many``, ``stats``,
        ``close``).  Names must be unique — they are the ring identities.
    coalesce_window:
        Seconds a flush timer waits after the first request of a batch;
        everything arriving within the window joins the same backend
        solve.  Latency cost is bounded by the window, throughput gain is
        the batched engine path (≥2x).
    max_pending:
        Admission limit: requests in flight (queued or solving) before
        new arrivals are shed with :class:`Overloaded`.
    shed_queue_depth:
        Optional backpressure limit from the backends' own
        ``pool_stats()`` queue depth: when every live backend last
        reported a depth above this, arrivals are shed even below
        ``max_pending``.  ``None`` disables depth-based shedding.
    request_timeout:
        Seconds to wait for one backend call before treating it as failed
        and trying the next replica.
    failover_cooldown:
        Seconds a backend that failed a call is deprioritized in failover
        chains (a successful health poll clears the cooldown early).
    health_interval:
        Seconds between background stats polls of every backend (feeds
        the health gauges and depth-based shedding).  The monitor starts
        with :meth:`start` / ``async with``.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; defaults to a
        private one (exposed as :attr:`registry`).
    tracer:
        Optional :class:`~repro.tracing.Tracer` minting and collecting
        request traces; defaults to the process-global tracer.  The
        tracer's ``sample_rate`` decides which requests get a trace —
        a sampled request mints a ``trace_id`` at admission and the
        context rides to the backends (and across their spawn
        boundaries), so the tracer's ring ends up holding complete
        end-to-end traces.
    breaker_threshold / breaker_reset:
        Per-backend :class:`CircuitBreaker` tuning: consecutive transport
        failures before the breaker opens, and seconds before an open
        breaker allows its half-open probe.
    retry_budget_ratio / retry_budget_burst:
        :class:`RetryBudget` tuning — the fraction of admitted traffic
        that may turn into retries (failovers + hedges) and the burst
        tolerated from idle.
    hedge_after:
        Hedged-send trigger: ``None`` disables hedging, a float is a
        fixed delay in seconds, a ``"p95"``-style string tracks that
        percentile of recent backend-call latencies.  When the primary
        replica has not answered within the delay, the same batch is
        sent to the next closed-breaker replica and the first success
        wins (replicas answer bit-identically, so duplicates are safe).
    degraded_answerer:
        Optional :class:`repro.approximate.ApproximateAnswerer` (or
        compatible).  With it configured, a request whose deadline is
        nearly spent — or whose every replica is open-circuit — gets a
        Monte-Carlo approximate answer with an error bound instead of an
        error, whenever the stale answer cache has no hit.
    answer_cache_size:
        Entries kept in the degraded-answer cache (the last exact answer
        per ``(mode, seed)``, generation-tagged).  ``0`` disables it.
    """

    def __init__(
        self,
        backends: Sequence[Any],
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        shed_queue_depth: Optional[int] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        failover_cooldown: float = DEFAULT_FAILOVER_COOLDOWN,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
        ring_points: int = DEFAULT_RING_POINTS,
        tracer: Optional[tracing.Tracer] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_reset: float = DEFAULT_BREAKER_RESET,
        retry_budget_ratio: float = DEFAULT_RETRY_RATIO,
        retry_budget_burst: float = DEFAULT_RETRY_BURST,
        hedge_after: Optional[Union[float, str]] = None,
        degraded_answerer: Optional[Any] = None,
        answer_cache_size: int = 4096,
    ):
        backends = list(backends)
        if not backends:
            raise InvalidParameterError("gateway needs at least one backend")
        if coalesce_window < 0:
            raise InvalidParameterError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.backends: Dict[str, Any] = {b.name: b for b in backends}
        if len(self.backends) != len(backends):
            raise InvalidParameterError(
                f"backend names must be unique, got {[b.name for b in backends]}"
            )
        self.ring = HashRing(list(self.backends), points=ring_points)
        self.coalesce_window = float(coalesce_window)
        self.max_pending = int(max_pending)
        self.shed_queue_depth = shed_queue_depth
        self.request_timeout = float(request_timeout)
        self.failover_cooldown = float(failover_cooldown)
        self.health_interval = float(health_interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else tracing.get_tracer()
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(breaker_threshold, breaker_reset)
            for name in self.backends
        }
        self.retry_budget = RetryBudget(retry_budget_ratio, retry_budget_burst)
        self.degraded_answerer = degraded_answerer
        # hedge_after: fixed seconds, or a latency percentile of recent
        # backend calls ("p95") — resolved per dispatch in _hedge_delay.
        self._hedge_fixed: Optional[float] = None
        self._hedge_percentile: Optional[float] = None
        if hedge_after is not None:
            if isinstance(hedge_after, str):
                text = hedge_after.strip().lower()
                try:
                    if not text.startswith("p"):
                        raise ValueError(text)
                    percentile = float(text[1:])
                    if not 0 < percentile < 100:
                        raise ValueError(text)
                except ValueError:
                    raise InvalidParameterError(
                        "hedge_after must be seconds or 'pNN' "
                        f"(0 < NN < 100), got {hedge_after!r}"
                    )
                self._hedge_percentile = percentile
            else:
                if hedge_after <= 0:
                    raise InvalidParameterError(
                        f"hedge_after must be > 0, got {hedge_after}"
                    )
                self._hedge_fixed = float(hedge_after)
        # Last exact answer per (mode, seed) + the generation it came
        # from: the first rung of the degradation ladder.
        self._answer_cache: "OrderedDict[Tuple, Tuple[Any, Any]]" = OrderedDict()
        self._answer_cache_size = int(answer_cache_size)
        # Recent backend-call latencies feeding percentile hedging.
        self._attempt_latencies: deque = deque(maxlen=512)
        # mode key -> [(seed, future, trace_entry, deadline), ...] waiting
        # for the flush timer; trace_entry is None for unsampled requests,
        # deadline is an absolute monotonic instant or None.
        self._pending: Dict[Tuple, List[Tuple[int, asyncio.Future, Any, Any]]] = {}
        self._flush_handles: Dict[Tuple, asyncio.TimerHandle] = {}
        self._flush_due: Dict[Tuple, float] = {}
        self._pending_total = 0
        self._unhealthy_until: Dict[str, float] = {}
        self._depths: Dict[str, float] = {}
        # Backend name -> last full registry snapshot (OP_METRICS poll).
        self._fleet_snapshots: Dict[str, Dict[str, Any]] = {}
        # Backend name -> generation name it last reported serving, so
        # sharded replicas converging onto a freshly published generation
        # is observable (and divergence — a replica stuck on the old one —
        # shows up both here and in the per-backend generation gauge).
        self._generations: Dict[str, Optional[str]] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._closed = False
        # Pre-register so an idle gateway exports zeros, not absent series.
        self._requests = self.registry.counter(
            telemetry.GATEWAY_REQUESTS, help="requests admitted or shed"
        )
        self._sheds = self.registry.counter(
            telemetry.GATEWAY_SHED, help="requests shed by admission control"
        )
        self._failovers = self.registry.counter(
            telemetry.GATEWAY_FAILOVERS, help="dispatches retried on a replica"
        )
        self._backend_errors = self.registry.counter(
            telemetry.GATEWAY_BACKEND_ERRORS,
            help="backend transport failures (connect/timeout/closed)",
        )
        self._latency = self.registry.histogram(
            telemetry.GATEWAY_REQUEST_SECONDS,
            help="end-to-end gateway request latency",
        )
        self._batch_sizes = self.registry.histogram(
            telemetry.GATEWAY_COALESCE_BATCH,
            buckets=telemetry.BATCH_SIZE_BUCKETS,
            help="seeds per coalesced backend solve",
        )
        self._deadline_exceeded = self.registry.counter(
            telemetry.DEADLINE_EXCEEDED,
            help="requests whose deadline expired at the gateway",
        )
        self._breaker_opened = self.registry.counter(
            telemetry.BREAKER_OPENED, help="circuit breakers tripped open"
        )
        self._breaker_closed = self.registry.counter(
            telemetry.BREAKER_CLOSED,
            help="circuit breakers closed by a successful probe",
        )
        self._breaker_rejected = self.registry.counter(
            telemetry.BREAKER_REJECTED,
            help="dispatch attempts skipped by an open breaker",
        )
        self._breaker_probes = self.registry.counter(
            telemetry.BREAKER_PROBES, help="half-open probe calls allowed"
        )
        self._hedge_sent = self.registry.counter(
            telemetry.HEDGE_SENT, help="hedged duplicate sends"
        )
        self._hedge_wins = self.registry.counter(
            telemetry.HEDGE_WINS, help="requests answered by the hedge first"
        )
        self._retry_exhausted = self.registry.counter(
            telemetry.RETRY_BUDGET_EXHAUSTED,
            help="retries refused by the drained token bucket",
        )
        self._degraded = self.registry.counter(
            telemetry.DEGRADED_REPLIES, help="degraded replies served"
        )
        self._degraded_cache = self.registry.counter(
            telemetry.DEGRADED_FROM_CACHE,
            help="degraded replies served from the stale answer cache",
        )
        self._degraded_approx = self.registry.counter(
            telemetry.DEGRADED_FROM_APPROX,
            help="degraded replies served by the Monte-Carlo fallback",
        )
        for name in self.backends:
            self._breaker_gauge(name).set(float(CircuitBreaker.CLOSED))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Gateway":
        """Start the background health monitor (idempotent)."""
        if self._monitor_task is None and self.health_interval > 0:
            self._monitor_task = asyncio.create_task(
                self._monitor(), name="gateway-health-monitor"
            )
        return self

    async def close(self) -> None:
        """Stop the monitor, fail unfinished requests, close the backends."""
        if self._closed:
            return
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for handle in self._flush_handles.values():
            handle.cancel()
        self._flush_handles.clear()
        self._flush_due.clear()
        for batch in self._pending.values():
            for _, future, _, _ in batch:
                self._pending_total -= 1
                if not future.done():
                    future.set_exception(BackendError("gateway closed"))
        self._pending.clear()
        for backend in self.backends.values():
            await backend.close()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------
    async def query(
        self, seed: int, deadline_ms: Optional[float] = None
    ) -> np.ndarray:
        """The dense ``(n,)`` RWR score row for one seed.

        Bit-identical to a direct ``WorkerPool.query_many`` call carrying
        the same coalesced seed set (seed *order* within a batch never
        affects the bits, and every replica answers a given batch
        identically — the artifacts are immutable).  Different batch
        compositions agree to solver tolerance, not bit-for-bit: the
        engine solves a batch's linear systems together.

        ``deadline_ms`` is the request's total budget; with it set the
        answer may be *degraded* — use :meth:`query_detailed` to see the
        flag and its error bound.
        """
        return (await self.query_detailed(seed, deadline_ms=deadline_ms)).value

    async def query_detailed(
        self, seed: int, deadline_ms: Optional[float] = None
    ) -> GatewayResult:
        """:meth:`query` plus the degradation tag (flag + error bound)."""
        return await self._submit(("dense",), int(seed), deadline_ms)

    async def query_topk(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """The packed top-k ``(id, score)`` pair records for one seed
        (:data:`repro.core.topk.PAIR_DTYPE`; may be shorter than ``k``)."""
        return (
            await self.query_topk_detailed(
                seed, k, exclude_seed=exclude_seed, deadline_ms=deadline_ms
            )
        ).value

    async def query_topk_detailed(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        deadline_ms: Optional[float] = None,
    ) -> GatewayResult:
        """:meth:`query_topk` plus the degradation tag."""
        k = validate_k(k)
        return await self._submit(
            ("topk", k, bool(exclude_seed)), int(seed), deadline_ms
        )

    async def stats(self) -> Dict[str, Any]:
        """Gateway-side serving state (admission, per-backend health)."""
        now = time.monotonic()
        batches = self._batch_sizes.count
        return {
            "pending": self._pending_total,
            "max_pending": self.max_pending,
            "shed_queue_depth": self.shed_queue_depth,
            "coalesce_window": self.coalesce_window,
            "requests": self._requests.value,
            "sheds": self._sheds.value,
            "failovers": self._failovers.value,
            "backend_errors": self._backend_errors.value,
            "deadline_exceeded": self._deadline_exceeded.value,
            "degraded": self._degraded.value,
            "hedges": {
                "sent": self._hedge_sent.value,
                "wins": self._hedge_wins.value,
            },
            "retry_budget_tokens": self.retry_budget.tokens,
            "coalesce": {
                "batches": batches,
                "mean_batch": self._batch_sizes.sum / batches if batches else 0.0,
            },
            "backends": {
                name: {
                    "healthy": now >= self._unhealthy_until.get(name, 0.0),
                    "queue_depth": self._depths.get(name),
                    "generation": self._generations.get(name),
                    "breaker": self.breakers[name].state_name,
                }
                for name in self.backends
            },
        }

    # ------------------------------------------------------------------
    # Admission + coalescing
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        self._requests.inc()
        # Every admission attempt feeds the retry token bucket, so the
        # allowed retry volume tracks offered load.
        self.retry_budget.accrue()
        if self._pending_total >= self.max_pending:
            self._sheds.inc()
            raise Overloaded(
                pending=self._pending_total,
                limit=self.max_pending,
                retry_after=compute_retry_after(
                    self._pending_total,
                    self.max_pending,
                    max(self.coalesce_window * 4, 0.01),
                ),
            )
        if self.shed_queue_depth is not None:
            depths = [
                depth
                for name, depth in self._depths.items()
                if depth is not None and self._is_healthy(name)
            ]
            # Shed only when *every* live backend is over the limit — a
            # single deep replica is a routing problem, not an overload.
            if depths and min(depths) > self.shed_queue_depth:
                self._sheds.inc()
                raise Overloaded(
                    pending=self._pending_total,
                    limit=self.max_pending,
                    retry_after=compute_retry_after(
                        int(min(depths)),
                        int(self.shed_queue_depth),
                        max(self.health_interval, 0.05),
                    ),
                )

    async def _submit(
        self, mode: Tuple, seed: int, deadline_ms: Optional[float] = None
    ) -> GatewayResult:
        if self._closed:
            raise BackendError("gateway closed")
        self._admit()
        loop = asyncio.get_running_loop()
        deadline: Optional[float] = None
        if deadline_ms is not None:
            if deadline_ms <= 0.0:
                # Spent on arrival (hop latency ate the budget): the only
                # useful reply is an instant degraded one.
                self._deadline_exceeded.inc()
                answer = await self._degraded_answer(mode, seed)
                if answer is not None:
                    self._count_degraded(answer)
                    return answer
                raise DeadlineExpired(
                    f"deadline budget spent at admission "
                    f"({deadline_ms:.1f} ms remaining)"
                )
            deadline = time.monotonic() + deadline_ms / 1000.0
        future: asyncio.Future = loop.create_future()
        # Sampling decision at admission: a sampled request mints a trace
        # id plus the root span id every later span parents under.
        trace_entry: Optional[Dict[str, Any]] = None
        trace_id = self.tracer.start_trace()
        if trace_id is not None:
            trace_entry = {
                "trace_id": trace_id,
                "root": tracing.mint_id(),
                "enqueued": time.time(),
            }
        self._pending.setdefault(mode, []).append(
            (seed, future, trace_entry, deadline)
        )
        self._pending_total += 1
        self._schedule_flush(loop, mode, deadline)
        watchdog: Optional[asyncio.TimerHandle] = None
        if deadline is not None:
            # Fire one coalesce window *before* the deadline: enough room
            # to serve a degraded answer so the client never waits more
            # than ~one window past its budget.  A budget tighter than
            # the window uses a quarter of itself as the margin instead —
            # the early flush (at half the budget) still gets a chance to
            # answer exactly before the watchdog degrades.
            remaining = deadline - time.monotonic()
            margin = min(self.coalesce_window, remaining / 4.0)
            fire_in = max(0.0, remaining - margin)
            watchdog = loop.call_later(
                fire_in, self._deadline_watchdog, mode, seed, future, deadline
            )
        start = time.perf_counter()
        error: Optional[BaseException] = None
        try:
            return await future
        except BaseException as exc:
            error = exc
            raise
        finally:
            if watchdog is not None:
                watchdog.cancel()
            elapsed = max(0.0, time.perf_counter() - start)
            if trace_entry is None:
                self._latency.observe(elapsed)
            else:
                self._latency.observe(
                    elapsed, exemplar=tracing.format_id(trace_id)
                )
                tags: Dict[str, Any] = {"seed": int(seed), "mode": mode[0]}
                if error is not None:
                    tags["error"] = type(error).__name__
                # The root record lands last — every child (including the
                # backend's, absorbed from the reply) is already in the
                # ring, so slow-query assembly sees the full breakdown.
                self.tracer.record(
                    tracing.make_record(
                        "gateway.request",
                        trace_id=trace_id,
                        span_id=trace_entry["root"],
                        parent_id=None,
                        start_time=trace_entry["enqueued"],
                        duration=elapsed,
                        tags=tags,
                    )
                )

    def _schedule_flush(
        self,
        loop: asyncio.AbstractEventLoop,
        mode: Tuple,
        deadline: Optional[float],
    ) -> None:
        """(Re)arm ``mode``'s flush timer.

        Default delay is one coalesce window from the first request of
        the batch.  A deadline shorter than the window would expire in
        the coalescer, so a deadline-carrying request pulls the flush
        forward to half its remaining budget — the batch loses some
        coalescing in exchange for the request making its deadline.
        """
        delay = self.coalesce_window
        if deadline is not None:
            delay = min(delay, max(0.0, (deadline - time.monotonic()) / 2.0))
        due = time.monotonic() + delay
        handle = self._flush_handles.get(mode)
        if handle is None:
            self._flush_handles[mode] = loop.call_later(delay, self._flush, mode)
            self._flush_due[mode] = due
        elif due < self._flush_due.get(mode, float("inf")):
            handle.cancel()
            self._flush_handles[mode] = loop.call_later(delay, self._flush, mode)
            self._flush_due[mode] = due

    def _flush(self, mode: Tuple) -> None:
        """Flush timer fired: group the window's requests per shard and
        dispatch one batched backend call per group."""
        self._flush_handles.pop(mode, None)
        self._flush_due.pop(mode, None)
        batch = self._pending.pop(mode, [])
        if not batch:
            return
        now = time.time()
        for seed, _, entry, _ in batch:
            if entry is not None:
                self.tracer.record(
                    tracing.make_record(
                        "gateway.coalesce_wait",
                        trace_id=entry["trace_id"],
                        span_id=tracing.mint_id(),
                        parent_id=entry["root"],
                        start_time=entry["enqueued"],
                        duration=max(0.0, now - entry["enqueued"]),
                    )
                )
        groups: Dict[str, List[Tuple[int, asyncio.Future, Any, Any]]] = {}
        for seed, future, entry, deadline in batch:
            groups.setdefault(self.ring.route(seed), []).append(
                (seed, future, entry, deadline)
            )
        for name, group in groups.items():
            asyncio.ensure_future(self._dispatch(mode, name, group))

    # ------------------------------------------------------------------
    # Dispatch + failover
    # ------------------------------------------------------------------
    def _is_healthy(self, name: str) -> bool:
        return time.monotonic() >= self._unhealthy_until.get(name, 0.0)

    def _mark_unhealthy(self, name: str) -> None:
        self._unhealthy_until[name] = time.monotonic() + self.failover_cooldown
        self._health_gauge(name).set(0.0)

    def _health_gauge(self, name: str):
        return self.registry.gauge(
            f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.healthy",
            help="1 = backend answering, 0 = cooling down after a failure",
        )

    def _record_generation(self, name: str, generation: Any) -> None:
        """Track the generation a backend reports serving.

        ``generation`` arrives as the pool's token (a resolved artifact
        path); only its final component — the ``gen-NNNNNN`` name for
        store-backed pools — is kept.  Store generations additionally
        export their numeric index as a gauge, so "replica stuck on an old
        generation" is a plottable, alertable signal rather than a string
        buried in stats.
        """
        gen_name = str(generation).rstrip("/").rsplit("/", 1)[-1] if generation else None
        self._generations[name] = gen_name
        if gen_name and gen_name.startswith("gen-"):
            suffix = gen_name[4:]
            if suffix.isdigit():
                self.registry.gauge(
                    f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.generation_index",
                    help="numeric index of the generation the backend serves",
                ).set(float(suffix))

    def _failover_chain(self, primary: str) -> List[str]:
        """Replicas to try, primary first; cooling-down backends move to
        the back of the chain rather than out of it (when everything is
        marked unhealthy there is nothing better to try)."""
        chain = [primary] + [n for n in self.ring.names if n != primary]
        return sorted(chain, key=lambda n: (not self._is_healthy(n),
                                            chain.index(n)))

    def _breaker_gauge(self, name: str):
        return self.registry.gauge(
            f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.breaker_state",
            help="circuit breaker state: 0 closed, 1 half-open, 2 open",
        )

    def _breaker_allow(self, name: str) -> bool:
        breaker = self.breakers[name]
        state_before = breaker.state
        allowed = breaker.allow()
        if allowed and state_before == CircuitBreaker.HALF_OPEN:
            self._breaker_probes.inc()
        if not allowed:
            self._breaker_rejected.inc()
        self._breaker_gauge(name).set(float(breaker.state))
        return allowed

    def _breaker_success(self, name: str) -> None:
        breaker = self.breakers[name]
        if breaker.state != CircuitBreaker.CLOSED:
            self._breaker_closed.inc()
        breaker.record_success()
        self._breaker_gauge(name).set(float(CircuitBreaker.CLOSED))

    def _breaker_failure(self, name: str) -> None:
        breaker = self.breakers[name]
        state_before = breaker.state
        breaker.record_failure()
        state_after = breaker.state
        if (
            state_after == CircuitBreaker.OPEN
            and state_before != CircuitBreaker.OPEN
        ):
            self._breaker_opened.inc()
        self._breaker_gauge(name).set(float(state_after))

    def _hedge_delay(self) -> Optional[float]:
        """Seconds to wait for the primary before hedging, or None."""
        if self._hedge_fixed is not None:
            return self._hedge_fixed
        if self._hedge_percentile is None:
            return None
        samples = sorted(self._attempt_latencies)
        if len(samples) < 16:  # too little signal to call a tail
            return None
        index = min(
            len(samples) - 1,
            int(len(samples) * self._hedge_percentile / 100.0),
        )
        return samples[index]

    @staticmethod
    def _group_deadline(
        group: List[Tuple[int, asyncio.Future, Any, Any]]
    ) -> Optional[float]:
        """The batch-level deadline of one coalesced shard group.

        The batch serves every member, so it runs as long as *any* member
        can still use the answer: members without a deadline make the
        batch unbounded, otherwise the latest member deadline wins.
        Members whose own (earlier) deadline passes mid-solve are
        answered by their watchdog, not by aborting the shared solve.
        """
        latest: Optional[float] = None
        for _, _, _, deadline in group:
            if deadline is None:
                return None
            latest = deadline if latest is None else max(latest, deadline)
        return latest

    async def _dispatch(
        self,
        mode: Tuple,
        primary: str,
        group: List[Tuple[int, asyncio.Future, Any, Any]],
    ) -> None:
        seeds = [seed for seed, _, _, _ in group]
        self._batch_sizes.observe(len(seeds))
        deadline = self._group_deadline(group)
        chain = self._failover_chain(primary)
        last_error: Optional[BaseException] = None
        attempts = 0
        for position, name in enumerate(chain):
            if deadline is not None and time.monotonic() >= deadline:
                last_error = DeadlineExpired(
                    "deadline spent before a replica answered"
                )
                break
            if not self._breaker_allow(name):
                if last_error is None:
                    last_error = BackendError(
                        f"backend {name}: circuit breaker open"
                    )
                continue
            if attempts > 0:
                if not self.retry_budget.try_spend():
                    self._retry_exhausted.inc()
                    if last_error is None:
                        last_error = BackendError("retry budget exhausted")
                    break
                self._failovers.inc()
            attempts += 1
            # Hedge only the first live attempt: a failover retry is
            # already a duplicate send.
            hedge_name: Optional[str] = None
            hedge_delay = self._hedge_delay()
            if attempts == 1 and hedge_delay is not None:
                hedge_name = next(
                    (
                        n
                        for n in chain[position + 1 :]
                        if self.breakers[n].state == CircuitBreaker.CLOSED
                    ),
                    None,
                )
            try:
                if hedge_name is None:
                    rows = await self._attempt(
                        mode, name, seeds, group, attempts - 1, deadline
                    )
                    winner = name
                else:
                    rows, winner = await self._attempt_hedged(
                        mode, name, hedge_name, hedge_delay,
                        seeds, group, deadline,
                    )
            except DeadlineExpired as exc:
                # The backend itself dropped the task as expired: no
                # replica can beat the clock either — degrade.
                last_error = exc
                break
            except (BackendError, TimeoutError) as exc:
                last_error = exc
                continue
            except Exception as exc:  # QueryError, Overloaded, bugs
                self._resolve(group, error=exc)
                return
            self._resolve(group, rows=rows, mode=mode, backend=winner)
            return
        await self._resolve_degraded(
            mode,
            group,
            BackendError(
                f"no replica answered for this shard (last: {last_error})"
            )
            if not isinstance(last_error, DeadlineExpired)
            else last_error,
        )

    async def _attempt(
        self,
        mode: Tuple,
        name: str,
        seeds: List[int],
        group: List[Tuple[int, asyncio.Future, Any, Any]],
        attempt: int,
        deadline: Optional[float],
    ) -> List[Any]:
        """One backend call: spans, breaker bookkeeping, deadline budget."""
        backend = self.backends[name]
        # One backend span per traced origin request per attempt; the
        # (trace_id, span_id) contexts ride on the backend call so the
        # server's spans nest under them.
        spans = [
            (entry, tracing.mint_id())
            for _, _, entry, _ in group
            if entry is not None
        ]
        contexts = [(entry["trace_id"], span_id) for entry, span_id in spans]
        # Only traced batches pass the kwarg, so backend stubs without
        # trace support keep working untraced; same for deadlines.
        kwargs: Dict[str, Any] = {"trace": contexts} if contexts else {}
        timeout = self.request_timeout
        if deadline is not None:
            # The wire carries *remaining* milliseconds, recomputed at
            # send time so queue/coalesce latency is already charged.
            remaining = deadline - time.monotonic()
            kwargs["deadline_ms"] = max(remaining * 1000.0, 0.0)
            timeout = min(timeout, max(remaining, 0.001))
        started = time.time()
        start = time.perf_counter()
        try:
            if mode[0] == "dense":
                scores = await asyncio.wait_for(
                    backend.query_many(seeds, **kwargs), timeout
                )
                rows: List[Any] = [scores[i] for i in range(len(seeds))]
            else:
                _, k, exclude_seed = mode
                rows = list(
                    await asyncio.wait_for(
                        backend.query_topk_many(
                            seeds, k, exclude_seed, **kwargs
                        ),
                        timeout,
                    )
                )
        except (BackendError, TimeoutError) as exc:
            self._backend_errors.inc()
            self._mark_unhealthy(name)
            self._breaker_failure(name)
            self._record_backend_spans(
                spans, name, attempt, started, start, error=exc
            )
            raise
        except asyncio.CancelledError:
            raise  # hedge loser or shutdown — no verdict on the backend
        except Exception as exc:  # QueryError, Overloaded: transport worked
            self._breaker_success(name)
            self._record_backend_spans(
                spans, name, attempt, started, start, error=exc
            )
            raise
        self._health_gauge(name).set(1.0)
        self._breaker_success(name)
        self._attempt_latencies.append(max(0.0, time.perf_counter() - start))
        self._record_backend_spans(spans, name, attempt, started, start)
        return rows

    async def _attempt_hedged(
        self,
        mode: Tuple,
        name: str,
        hedge_name: str,
        hedge_delay: float,
        seeds: List[int],
        group: List[Tuple[int, asyncio.Future, Any, Any]],
        deadline: Optional[float],
    ) -> Tuple[List[Any], str]:
        """Race the primary against a delayed duplicate on ``hedge_name``.

        The hedge launches only if the primary is still unanswered after
        ``hedge_delay`` seconds *and* the retry budget has a token (a
        hedge is a duplicate send, exactly what the budget bounds).  The
        first success wins and the loser is cancelled; replicas answer
        bit-identically, so the caller cannot tell who won — except in
        the ``rwr.gateway.hedge.*`` counters.
        """
        primary = asyncio.ensure_future(
            self._attempt(mode, name, seeds, group, 0, deadline)
        )
        done, _ = await asyncio.wait({primary}, timeout=hedge_delay)
        if done:
            return await primary, name
        if not self.retry_budget.try_spend():
            self._retry_exhausted.inc()
            return await primary, name
        self._hedge_sent.inc()
        hedge = asyncio.ensure_future(
            self._attempt(mode, hedge_name, seeds, group, 1, deadline)
        )
        owners = {primary: name, hedge: hedge_name}
        pending = {primary, hedge}
        primary_error: Optional[BaseException] = None
        other_error: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                error = task.exception()
                if error is None:
                    for loser in pending:
                        loser.cancel()
                    if pending:
                        await asyncio.wait(pending)
                    if task is hedge:
                        self._hedge_wins.inc()
                    return task.result(), owners[task]
                if task is primary:
                    primary_error = error
                else:
                    other_error = error
        raise primary_error if primary_error is not None else other_error

    def _record_backend_spans(
        self,
        spans: List[Tuple[Dict[str, Any], int]],
        name: str,
        attempt: int,
        started: float,
        start: float,
        error: Optional[BaseException] = None,
    ) -> None:
        """Emit the ``gateway.backend`` span (routing + socket RTT + server
        time) of one dispatch attempt into every origin request's trace."""
        if not spans:
            return
        duration = max(0.0, time.perf_counter() - start)
        tags: Dict[str, Any] = {"backend": name, "attempt": attempt}
        if error is not None:
            tags["error"] = type(error).__name__
        for entry, span_id in spans:
            self.tracer.record(
                tracing.make_record(
                    "gateway.backend",
                    trace_id=entry["trace_id"],
                    span_id=span_id,
                    parent_id=entry["root"],
                    start_time=started,
                    duration=duration,
                    tags=tags,
                )
            )

    def _resolve(
        self,
        group: List[Tuple[int, asyncio.Future, Any, Any]],
        rows: Optional[List[Any]] = None,
        error: Optional[BaseException] = None,
        mode: Optional[Tuple] = None,
        backend: Optional[str] = None,
    ) -> None:
        generation = self._generations.get(backend) if backend else None
        for index, (seed, future, _, _) in enumerate(group):
            self._pending_total -= 1
            if rows is not None and mode is not None:
                # Cache even when the future is already done (watchdog
                # served a degraded answer): the exact late answer is the
                # freshest thing the next degraded hit can get.
                self._cache_answer(mode, seed, rows[index], generation)
            if future.done():  # caller gave up, or watchdog answered
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(GatewayResult(rows[index]))

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    def _cache_answer(
        self, mode: Tuple, seed: int, value: Any, generation: Any
    ) -> None:
        if self._answer_cache_size <= 0:
            return
        key = (mode, int(seed))
        self._answer_cache[key] = (value, generation)
        self._answer_cache.move_to_end(key)
        while len(self._answer_cache) > self._answer_cache_size:
            self._answer_cache.popitem(last=False)

    async def _degraded_answer(
        self, mode: Tuple, seed: int
    ) -> Optional[GatewayResult]:
        """The degradation ladder: stale cache hit, then Monte Carlo.

        Returns ``None`` when neither rung can answer (no cache entry, no
        answerer configured, or the answerer failed) — the caller falls
        back to the error it was about to raise.
        """
        key = (mode, int(seed))
        cached = self._answer_cache.get(key)
        if cached is not None:
            self._answer_cache.move_to_end(key)
            value, _generation = cached
            # A cache hit is an *exact* answer for a possibly stale
            # generation: its error bound is zero by construction.
            return GatewayResult(
                value, degraded=True, error_bound=0.0, source="cache"
            )
        if self.degraded_answerer is None:
            return None
        loop = asyncio.get_running_loop()
        try:
            if mode[0] == "dense":
                scores, bound = await loop.run_in_executor(
                    None, partial(self.degraded_answerer.answer_many, [seed])
                )
                value = scores[0]
            else:
                _, k, exclude_seed = mode
                result, bound = await loop.run_in_executor(
                    None,
                    partial(
                        self.degraded_answerer.answer_topk,
                        seed, k, exclude_seed,
                    ),
                )
                value = to_pairs(result)
        except Exception:  # noqa: BLE001 — degraded path must not crash serving
            return None
        return GatewayResult(
            value, degraded=True, error_bound=float(bound), source="approx"
        )

    def _count_degraded(self, answer: GatewayResult) -> None:
        """Count a degraded reply at the moment it is actually served.

        The deadline watchdog and the terminal-error path race to compute
        an answer for the same future; only the winner serves it, so the
        loser must not count."""
        self._degraded.inc()
        if answer.source == "cache":
            self._degraded_cache.inc()
        else:
            self._degraded_approx.inc()

    async def _resolve_degraded(
        self,
        mode: Tuple,
        group: List[Tuple[int, asyncio.Future, Any, Any]],
        error: BaseException,
    ) -> None:
        """Resolve a group no replica answered: degraded where possible,
        the terminal error where not."""
        for seed, future, _, _ in group:
            self._pending_total -= 1
            if future.done():
                continue
            answer = await self._degraded_answer(mode, seed)
            if future.done():  # the watchdog raced us and answered
                continue
            if answer is not None:
                self._count_degraded(answer)
                future.set_result(answer)
            else:
                future.set_exception(error)

    def _deadline_watchdog(
        self, mode: Tuple, seed: int, future: asyncio.Future, deadline: float
    ) -> None:
        if future.done():
            return
        asyncio.ensure_future(self._expire(mode, seed, future, deadline))

    async def _expire(
        self, mode: Tuple, seed: int, future: asyncio.Future, deadline: float
    ) -> None:
        """A request's deadline is (nearly) up and no exact answer landed:
        serve a degraded one now rather than an exact one too late.

        The future resolves here but the in-flight backend batch is left
        to finish — its answer refreshes the cache, and
        :meth:`_resolve` skips the already-done future (that is also
        where ``_pending_total`` is decremented exactly once)."""
        if future.done():
            return
        self._deadline_exceeded.inc()
        self.registry.histogram(
            telemetry.DEADLINE_DEGRADED_AT,
            help="remaining budget (ms) when the deadline watchdog fired",
        ).observe(max(0.0, (deadline - time.monotonic()) * 1000.0))
        answer = await self._degraded_answer(mode, seed)
        if future.done():  # the exact answer won the race after all
            return
        if answer is not None:
            self._count_degraded(answer)
            future.set_result(answer)
        else:
            future.set_exception(
                DeadlineExpired(
                    f"deadline spent before any replica answered seed {seed}"
                )
            )

    # ------------------------------------------------------------------
    # Health monitor
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        while True:
            for name, backend in list(self.backends.items()):
                depth_gauge = self.registry.gauge(
                    f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.queue_depth",
                    help="queue depth the backend last reported",
                )
                try:
                    stats = await asyncio.wait_for(
                        backend.stats(), min(self.health_interval, 5.0)
                    )
                except (BackendError, QueryError, Overloaded, TimeoutError):
                    self._depths.pop(name, None)
                    self._health_gauge(name).set(0.0)
                    continue
                depth = float(stats.get("queue_depth") or 0)
                self._depths[name] = depth
                depth_gauge.set(depth)
                self._record_generation(name, stats.get("generation"))
                # A live stats reply is proof of recovery: clear any
                # failure cooldown instead of waiting it out.
                self._unhealthy_until.pop(name, None)
                self._health_gauge(name).set(1.0)
                # Full registry snapshot for fleet aggregation — best
                # effort; a failed poll keeps the previous snapshot.
                poll = getattr(backend, "metrics_snapshot", None)
                if poll is not None:
                    try:
                        snapshot = await asyncio.wait_for(
                            poll(), min(self.health_interval, 5.0)
                        )
                    except (BackendError, QueryError, Overloaded, TimeoutError):
                        pass
                    else:
                        if snapshot:
                            self._fleet_snapshots[name] = snapshot
            await asyncio.sleep(self.health_interval)

    # ------------------------------------------------------------------
    # Fleet aggregation
    # ------------------------------------------------------------------
    def fleet_registry(self) -> MetricsRegistry:
        """One merged registry over the gateway's own metrics and every
        backend's last-polled snapshot (counters/gauges sum, histograms
        merge bucket-wise), so fleet-wide p50/p95/p99 read like a
        single-process run."""
        self.tracer.export_to(self.registry)
        return telemetry.merge_snapshots(
            list(self._fleet_snapshots.values()) + [self.registry.snapshot()]
        )

    def fleet_snapshot(self) -> Dict[str, Any]:
        """The fleet observability document ``repro top`` renders.

        Carries the gateway's own snapshot, each backend's last-polled
        snapshot keyed by backend name, the merged fleet registry, the
        per-backend serving generations, the tracer's counters and the
        recent slow-query log.
        """
        merged = self.fleet_registry()
        return {
            "schema": FLEET_SCHEMA,
            "gateway": self.registry.snapshot(),
            "backends": dict(self._fleet_snapshots),
            "merged": merged.snapshot(),
            "generations": dict(self._generations),
            "trace": self.tracer.stats(),
            "slow_queries": self.tracer.slow_queries(),
        }

    def fleet_prometheus(self) -> str:
        """Prometheus exposition of the whole fleet: the gateway's own
        series unlabelled, plus every backend's series labelled
        ``backend="<name>"`` (names are escaped, so arbitrary endpoint
        strings cannot break line validity)."""
        self.tracer.export_to(self.registry)
        parts = [self.registry.to_prometheus()]
        for name in sorted(self._fleet_snapshots):
            registry = MetricsRegistry.from_snapshot(self._fleet_snapshots[name])
            parts.append(registry.to_prometheus(labels={"backend": name}))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Gateway({list(self.backends)}, window={self.coalesce_window}, "
            f"max_pending={self.max_pending})"
        )


# ----------------------------------------------------------------------
# Socket servers
# ----------------------------------------------------------------------
class _WireServer:
    """Shared asyncio socket-server scaffolding (accept/read/dispatch)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0`` (ephemeral)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await wire.read_message(reader)
                except wire.ProtocolError:
                    # A frame that does not parse (bad version, truncated
                    # body) is transport corruption, not an application
                    # error: close instead of replying, so the peer's
                    # failover/breaker machinery sees a dead link rather
                    # than a poisoned answer.
                    break
                if request is None:
                    break
                reply = await self._answer(request)
                await wire.write_message(writer, reply)
        except (ConnectionError, OSError):  # peer vanished mid-reply
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass

    async def _answer(self, request: wire.Request) -> wire.Reply:
        raise NotImplementedError


class PoolServer(_WireServer):
    """A :class:`~repro.serve.WorkerPool` behind the wire protocol.

    This is what ``repro serve --listen HOST:PORT`` runs: one of these
    per host, N of them behind a :class:`Gateway`.  Pool calls funnel
    through a single-thread executor (the pool's collection loop is
    single-caller); ``shed_queue_depth`` bounds the number of requests
    waiting on that executor before the server answers
    ``REPLY_OVERLOADED`` instead of queueing deeper.
    """

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        shed_queue_depth: Optional[int] = None,
    ):
        super().__init__(host, port)
        self.pool = pool
        self.shed_queue_depth = shed_queue_depth
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pool-server"
        )
        self._inflight = 0

    async def close(self) -> None:
        await super().close()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        self._inflight += 1
        try:
            return await loop.run_in_executor(self._executor, partial(fn, *args))
        finally:
            self._inflight -= 1

    def _depth(self) -> int:
        stats_depth = 0
        for task_queue in self.pool._task_queues:
            try:
                stats_depth += int(task_queue.qsize())
            except (NotImplementedError, OSError):  # pragma: no cover
                pass
        return stats_depth + self._inflight

    def _pop_trace_records(
        self, trace: Sequence[Tuple[int, int]]
    ) -> Tuple[Dict[str, Any], ...]:
        """Pull the span records of a traced request out of this process's
        tracer ring so they travel back on the wire reply (the caller's
        gateway absorbs them — the trace lives where the request began)."""
        if not trace:
            return ()
        return tuple(
            tracing.get_tracer().pop_trace_records(
                [trace_id for trace_id, _ in trace]
            )
        )

    async def _answer(self, request: wire.Request) -> wire.Reply:
        try:
            if isinstance(request, wire.QueryRequest):
                if self._shedding():
                    return self._overloaded()
                scores = await self._run(
                    partial(
                        self.pool.query_many,
                        [int(s) for s in request.seeds],
                        trace=list(request.trace) or None,
                        deadline_ms=request.deadline_ms,
                    )
                )
                return wire.DenseReply(
                    scores=scores,
                    trace_records=self._pop_trace_records(request.trace),
                )
            if isinstance(request, wire.TopKRequest):
                if self._shedding():
                    return self._overloaded()
                results = await self._run(
                    partial(
                        self.pool.query_topk_many,
                        [int(s) for s in request.seeds],
                        request.k,
                        request.exclude_seed,
                        trace=list(request.trace) or None,
                        deadline_ms=request.deadline_ms,
                    )
                )
                return wire.TopKReply(
                    pairs=[to_pairs(r) for r in results],
                    trace_records=self._pop_trace_records(request.trace),
                )
            if isinstance(request, wire.MetricsRequest):
                registry = await self._run(self.pool.metrics)
                tracing.get_tracer().export_to(registry)
                return wire.StatsReply(stats=registry.snapshot())
            if isinstance(request, wire.StatsRequest):
                stats = await self._run(self.pool.pool_stats)
                worker_stats = self.pool.worker_stats()
                return wire.StatsReply(
                    stats={
                        "queue_depth": self._depth(),
                        "generation": stats.get("generation"),
                        "n_workers": stats.get("n_workers"),
                        "n_nodes": (
                            worker_stats[0].get("n_nodes")
                            if worker_stats else None
                        ),
                        "queries_submitted": stats.get("queries_submitted"),
                        "worker_restarts": stats.get("worker_restarts"),
                    }
                )
        except (WorkerError, InvalidParameterError) as exc:
            return wire.ErrorReply(f"{type(exc).__name__}: {exc}")
        return wire.ErrorReply(
            f"pool server cannot answer {type(request).__name__}"
        )

    def _shedding(self) -> bool:
        return (
            self.shed_queue_depth is not None
            and self._depth() > self.shed_queue_depth
        )

    def _overloaded(self) -> wire.OverloadedReply:
        depth = self._depth()
        return wire.OverloadedReply(
            pending=depth,
            limit=int(self.shed_queue_depth or 0),
            retry_after=compute_retry_after(
                depth, int(self.shed_queue_depth or 1), 0.05
            ),
        )


class GatewayServer(_WireServer):
    """A :class:`Gateway` behind the wire protocol (the client-facing hop).

    Every seed of an incoming request goes through the gateway's
    coalescer individually, so concurrent client connections merge into
    shared backend solves; a multi-seed request is simply N coalescable
    requests that happen to arrive together.
    """

    def __init__(
        self,
        gateway: Gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        default_deadline_ms: Optional[float] = None,
    ):
        super().__init__(host, port)
        self.gateway = gateway
        # Budget applied to requests arriving *without* a deadline trailer
        # (v2 clients, or v3 clients that did not set one); None = no
        # default, those requests run unbounded as before.
        self.default_deadline_ms = default_deadline_ms

    def _deadline_ms(self, request) -> Optional[float]:
        if request.deadline_ms is not None:
            return request.deadline_ms
        return self.default_deadline_ms

    async def _answer(self, request: wire.Request) -> wire.Reply:
        try:
            if isinstance(request, wire.QueryRequest):
                results = await self._gather(
                    [
                        self.gateway.query_detailed(
                            int(s), deadline_ms=self._deadline_ms(request)
                        )
                        for s in request.seeds
                    ]
                )
                rows = [r.value for r in results]
                scores = (
                    np.vstack(rows)
                    if rows
                    else np.empty((0, 0), dtype=np.float64)
                )
                return wire.DenseReply(
                    scores=scores, **self._degradation(results)
                )
            if isinstance(request, wire.TopKRequest):
                results = await self._gather(
                    [
                        self.gateway.query_topk_detailed(
                            int(s),
                            request.k,
                            request.exclude_seed,
                            deadline_ms=self._deadline_ms(request),
                        )
                        for s in request.seeds
                    ]
                )
                return wire.TopKReply(
                    pairs=[r.value for r in results],
                    **self._degradation(results),
                )
            if isinstance(request, wire.StatsRequest):
                return wire.StatsReply(stats=await self.gateway.stats())
            if isinstance(request, wire.MetricsRequest):
                return wire.StatsReply(stats=self.gateway.fleet_snapshot())
        except Overloaded as exc:
            return wire.OverloadedReply(
                pending=exc.pending, limit=exc.limit, retry_after=exc.retry_after
            )
        except (
            DeadlineExpired, QueryError, BackendError, InvalidParameterError
        ) as exc:
            return wire.ErrorReply(f"{type(exc).__name__}: {exc}")
        return wire.ErrorReply(
            f"gateway cannot answer {type(request).__name__}"
        )

    @staticmethod
    def _degradation(results: List[GatewayResult]) -> Dict[str, Any]:
        """The reply-level degradation tag of a multi-seed request: the
        reply is degraded if *any* seed was, and carries the worst bound."""
        degraded = any(r.degraded for r in results)
        bound = max(
            (r.error_bound for r in results if r.degraded), default=0.0
        )
        return {"degraded": degraded, "error_bound": bound}

    @staticmethod
    async def _gather(coros: List[Any]) -> List[Any]:
        """Gather that re-raises the highest-priority failure after every
        branch settled (a plain ``gather`` abandons siblings whose
        exceptions then log as never-retrieved)."""
        results = await asyncio.gather(*coros, return_exceptions=True)
        for exception_type in (Overloaded, QueryError, BackendError):
            for result in results:
                if isinstance(result, exception_type):
                    raise result
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results
