"""Asyncio gateway: the traffic-shaped front door of the serve tier.

:class:`repro.serve.WorkerPool` ends at a blocking single-host Python
API.  This module adds everything between that API and real traffic:

- **request coalescing** — concurrent single-seed requests arriving
  within a short window are merged into one batched
  ``query_many`` / ``query_topk_many`` call (the batched engine paths are
  ≥2x over looped single queries), so a thousand independent clients get
  the throughput of a well-batched one;
- **admission control** — when the number of in-flight requests reaches
  ``max_pending`` (or every backend reports a queue deeper than
  ``shed_queue_depth``), new arrivals are *shed* with a typed
  :class:`Overloaded` instead of queueing unboundedly — bounded p99 for
  the traffic that is admitted;
- **sharding + failover** — backends (local pools or remote
  ``repro serve --listen`` endpoints speaking :mod:`repro.wire`) sit on a
  consistent-hash ring; each seed routes to its shard's backend, and
  connect/timeout failures fail over to the next replica on the ring.
  Immutable artifact generations make every replica answer bit-identically,
  so failover is invisible to callers;
- **telemetry** — request latency histograms, coalesce batch sizes, shed
  and failover counters, and per-backend health/queue-depth gauges, all
  through the existing :mod:`repro.telemetry` registry
  (``rwr.gateway.*``).

Topology::

    clients ──wire──> GatewayServer ──> Gateway ──wire──> PoolServer ──> WorkerPool   (host A)
                                            └─────wire──> PoolServer ──> WorkerPool   (host B)

or, single-box, a :class:`LocalBackend` wraps the pool in-process and the
wire hops disappear.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry, tracing, wire
from repro.core.topk import to_pairs, validate_k
from repro.exceptions import InvalidParameterError
from repro.serve import WorkerPool, WorkerError
from repro.telemetry import MetricsRegistry

#: Seconds a flush timer waits for more requests to coalesce.
DEFAULT_COALESCE_WINDOW = 0.002

#: In-flight requests admitted before the gateway starts shedding.
DEFAULT_MAX_PENDING = 1024

#: Seconds between backend health/queue-depth polls.
DEFAULT_HEALTH_INTERVAL = 1.0

#: Seconds a backend stays deprioritized after a transport failure.
DEFAULT_FAILOVER_COOLDOWN = 2.0

#: Seconds the gateway waits for one backend call before failing over.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: Virtual points per backend on the consistent-hash ring.
DEFAULT_RING_POINTS = 64

#: Schema identifier of :meth:`Gateway.fleet_snapshot` documents.
FLEET_SCHEMA = "repro-fleet/v1"


class Overloaded(RuntimeError):
    """The gateway shed this request under backpressure.

    Typed (rather than a generic error string) so clients and the wire
    layer can distinguish "retry shortly" from "this request is wrong":
    the request was never queued, and retrying after ``retry_after``
    seconds is expected to succeed once the backlog drains.
    """

    def __init__(self, pending: int, limit: int, retry_after: float = 0.05):
        super().__init__(
            f"gateway overloaded: {pending} pending request(s) at limit {limit}"
        )
        self.pending = int(pending)
        self.limit = int(limit)
        self.retry_after = float(retry_after)


class BackendError(RuntimeError):
    """A backend failed at the transport level (connect/timeout/closed).

    This is the *retriable* failure class — the gateway fails over to the
    next replica on the ring.  Callers only see it when every replica of a
    shard failed.
    """


class QueryError(RuntimeError):
    """The backend answered with an application error (bad seed, bad k).

    Retrying the identical request on a replica would fail identically,
    so this propagates to the caller without failover.
    """


def parse_endpoint(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--listen`` / ``--backend`` format)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise InvalidParameterError(
            f"endpoint must look like HOST:PORT, got {text!r}"
        )
    return host, int(port)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
def _hash64(text: str) -> int:
    """Deterministic 64-bit hash (Python's ``hash`` is salted per process)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over backend names.

    Each backend owns ``points`` pseudo-random positions on a 64-bit
    ring; a seed routes to the backend owning the first position at or
    after the seed's hash.  Adding or removing one backend therefore
    remaps only ~1/n of the seeds — the cache-locality property that
    makes per-backend top-k caches effective behind the gateway.  Hashes
    come from BLAKE2b, so routing is deterministic across processes and
    runs (unlike the salted builtin ``hash``).
    """

    def __init__(self, names: Sequence[str], points: int = DEFAULT_RING_POINTS):
        names = list(names)
        if not names:
            raise InvalidParameterError("hash ring needs at least one backend")
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"backend names must be unique, got {names}")
        self.names = names
        entries: List[Tuple[int, str]] = []
        for name in names:
            for point in range(points):
                entries.append((_hash64(f"{name}#{point}"), name))
        entries.sort()
        self._keys = [key for key, _ in entries]
        self._owners = [name for _, name in entries]

    def route(self, seed: int) -> str:
        """The backend name owning ``seed``'s shard."""
        return self.order(seed)[0]

    def order(self, seed: int) -> List[str]:
        """Every distinct backend in ring order starting at ``seed``'s
        position — the failover chain (primary first)."""
        start = bisect_right(self._keys, _hash64(str(int(seed))))
        seen: Dict[str, None] = {}
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in seen:
                seen[owner] = None
                if len(seen) == len(self.names):
                    break
        return list(seen)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class LocalBackend:
    """A :class:`~repro.serve.WorkerPool` adapted to the async backend API.

    Pool calls are blocking and the pool's supervised collection loop is
    written for one caller at a time, so every call funnels through a
    dedicated single-thread executor — the coalescer batches concurrency
    *before* this point, so serialization costs nothing.
    """

    def __init__(self, pool: WorkerPool, name: str = "local"):
        self.pool = pool
        self.name = name
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"gw-backend-{name}"
        )
        self._inflight = 0

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        self._inflight += 1
        try:
            return await loop.run_in_executor(self._executor, partial(fn, *args))
        except (WorkerError, InvalidParameterError) as exc:
            raise QueryError(f"{type(exc).__name__}: {exc}") from exc
        finally:
            self._inflight -= 1

    async def query_many(
        self,
        seeds: Sequence[int],
        trace: Sequence[Tuple[int, int]] = (),
    ) -> np.ndarray:
        return await self._run(
            partial(self.pool.query_many, list(seeds), trace=list(trace) or None)
        )

    async def query_topk_many(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool,
        trace: Sequence[Tuple[int, int]] = (),
    ) -> List[np.ndarray]:
        results = await self._run(
            partial(
                self.pool.query_topk_many, list(seeds), k, exclude_seed,
                trace=list(trace) or None,
            )
        )
        return [to_pairs(result) for result in results]

    async def stats(self) -> Dict[str, Any]:
        stats = await self._run(self.pool.pool_stats)
        pool_depth = stats.get("queue_depth") or 0
        return {
            "queue_depth": int(pool_depth) + self._inflight,
            "generation": stats.get("generation"),
            "n_workers": stats.get("n_workers"),
            "queries_submitted": stats.get("queries_submitted"),
        }

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """The pool's merged telemetry snapshot (fleet aggregation feed)."""
        registry = await self._run(self.pool.metrics)
        return registry.snapshot()

    async def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalBackend({self.name!r})"


class RemoteBackend:
    """A ``repro serve --listen`` endpoint reached over :mod:`repro.wire`.

    One persistent connection, reopened lazily after any failure; requests
    are serialized per connection (the protocol is strictly
    request/reply), which matches the server side funneling into one
    worker-pool dispatcher anyway.  Transport failures surface as
    :class:`BackendError` (→ ring failover); ``REPLY_ERROR`` frames
    surface as :class:`QueryError` (→ propagate); ``REPLY_OVERLOADED``
    frames surface as :class:`Overloaded`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: Optional[str] = None,
        connect_timeout: float = 5.0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.host = host
        self.port = int(port)
        self.name = name if name is not None else f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass

    async def _call(self, message: wire.Request) -> wire.Reply:
        async with self._lock:
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.connect_timeout,
                    )
                await wire.write_message(self._writer, message)
                reply = await asyncio.wait_for(
                    wire.read_message(self._reader), self.request_timeout
                )
            except (OSError, TimeoutError, wire.ProtocolError) as exc:
                await self._drop_connection()
                raise BackendError(
                    f"backend {self.name}: {type(exc).__name__}: {exc}"
                ) from exc
            except asyncio.CancelledError:
                # Cancelled mid-exchange (e.g. a bounded fleet-metrics
                # poll): the reply is still in flight, so the connection
                # is desynchronized for whoever uses it next.  Drop it.
                await self._drop_connection()
                raise
            if reply is None:
                await self._drop_connection()
                raise BackendError(f"backend {self.name}: connection closed")
        if isinstance(reply, wire.ErrorReply):
            raise QueryError(reply.message)
        if isinstance(reply, wire.OverloadedReply):
            raise Overloaded(
                pending=reply.pending,
                limit=reply.limit,
                retry_after=reply.retry_after,
            )
        return reply

    async def query_many(
        self,
        seeds: Sequence[int],
        trace: Sequence[Tuple[int, int]] = (),
    ) -> np.ndarray:
        reply = await self._call(
            wire.QueryRequest(
                seeds=np.asarray(list(seeds), dtype=np.int64),
                trace=tuple(trace),
            )
        )
        if not isinstance(reply, wire.DenseReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        self._absorb_trace(reply.trace_records)
        return reply.scores

    async def query_topk_many(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool,
        trace: Sequence[Tuple[int, int]] = (),
    ) -> List[np.ndarray]:
        reply = await self._call(
            wire.TopKRequest(
                seeds=np.asarray(list(seeds), dtype=np.int64),
                k=int(k),
                exclude_seed=bool(exclude_seed),
                trace=tuple(trace),
            )
        )
        if not isinstance(reply, wire.TopKReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        self._absorb_trace(reply.trace_records)
        return reply.pairs

    @staticmethod
    def _absorb_trace(records: Sequence[Dict[str, Any]]) -> None:
        """Fold the server-side span records of a traced reply into this
        process's tracer — the gateway's ring ends up holding the whole
        cross-host trace."""
        if records:
            tracing.get_tracer().absorb(records)

    async def stats(self) -> Dict[str, Any]:
        reply = await self._call(wire.StatsRequest())
        if not isinstance(reply, wire.StatsReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        return reply.stats

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """The backend's merged telemetry snapshot via ``OP_METRICS``."""
        reply = await self._call(wire.MetricsRequest())
        if not isinstance(reply, wire.StatsReply):
            raise BackendError(
                f"backend {self.name}: unexpected reply {type(reply).__name__}"
            )
        return reply.stats

    async def close(self) -> None:
        async with self._lock:
            await self._drop_connection()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteBackend({self.name!r})"


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class Gateway:
    """Coalescing, shedding, sharding front door over one or more backends.

    Parameters
    ----------
    backends:
        :class:`LocalBackend` / :class:`RemoteBackend` instances (anything
        with ``name``, ``query_many``, ``query_topk_many``, ``stats``,
        ``close``).  Names must be unique — they are the ring identities.
    coalesce_window:
        Seconds a flush timer waits after the first request of a batch;
        everything arriving within the window joins the same backend
        solve.  Latency cost is bounded by the window, throughput gain is
        the batched engine path (≥2x).
    max_pending:
        Admission limit: requests in flight (queued or solving) before
        new arrivals are shed with :class:`Overloaded`.
    shed_queue_depth:
        Optional backpressure limit from the backends' own
        ``pool_stats()`` queue depth: when every live backend last
        reported a depth above this, arrivals are shed even below
        ``max_pending``.  ``None`` disables depth-based shedding.
    request_timeout:
        Seconds to wait for one backend call before treating it as failed
        and trying the next replica.
    failover_cooldown:
        Seconds a backend that failed a call is deprioritized in failover
        chains (a successful health poll clears the cooldown early).
    health_interval:
        Seconds between background stats polls of every backend (feeds
        the health gauges and depth-based shedding).  The monitor starts
        with :meth:`start` / ``async with``.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; defaults to a
        private one (exposed as :attr:`registry`).
    tracer:
        Optional :class:`~repro.tracing.Tracer` minting and collecting
        request traces; defaults to the process-global tracer.  The
        tracer's ``sample_rate`` decides which requests get a trace —
        a sampled request mints a ``trace_id`` at admission and the
        context rides to the backends (and across their spawn
        boundaries), so the tracer's ring ends up holding complete
        end-to-end traces.
    """

    def __init__(
        self,
        backends: Sequence[Any],
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        shed_queue_depth: Optional[int] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        failover_cooldown: float = DEFAULT_FAILOVER_COOLDOWN,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
        ring_points: int = DEFAULT_RING_POINTS,
        tracer: Optional[tracing.Tracer] = None,
    ):
        backends = list(backends)
        if not backends:
            raise InvalidParameterError("gateway needs at least one backend")
        if coalesce_window < 0:
            raise InvalidParameterError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.backends: Dict[str, Any] = {b.name: b for b in backends}
        if len(self.backends) != len(backends):
            raise InvalidParameterError(
                f"backend names must be unique, got {[b.name for b in backends]}"
            )
        self.ring = HashRing(list(self.backends), points=ring_points)
        self.coalesce_window = float(coalesce_window)
        self.max_pending = int(max_pending)
        self.shed_queue_depth = shed_queue_depth
        self.request_timeout = float(request_timeout)
        self.failover_cooldown = float(failover_cooldown)
        self.health_interval = float(health_interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else tracing.get_tracer()
        # mode key -> [(seed, future, trace_entry), ...] waiting for the
        # flush timer; trace_entry is None for unsampled requests.
        self._pending: Dict[Tuple, List[Tuple[int, asyncio.Future, Any]]] = {}
        self._flush_handles: Dict[Tuple, asyncio.TimerHandle] = {}
        self._pending_total = 0
        self._unhealthy_until: Dict[str, float] = {}
        self._depths: Dict[str, float] = {}
        # Backend name -> last full registry snapshot (OP_METRICS poll).
        self._fleet_snapshots: Dict[str, Dict[str, Any]] = {}
        # Backend name -> generation name it last reported serving, so
        # sharded replicas converging onto a freshly published generation
        # is observable (and divergence — a replica stuck on the old one —
        # shows up both here and in the per-backend generation gauge).
        self._generations: Dict[str, Optional[str]] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._closed = False
        # Pre-register so an idle gateway exports zeros, not absent series.
        self._requests = self.registry.counter(
            telemetry.GATEWAY_REQUESTS, help="requests admitted or shed"
        )
        self._sheds = self.registry.counter(
            telemetry.GATEWAY_SHED, help="requests shed by admission control"
        )
        self._failovers = self.registry.counter(
            telemetry.GATEWAY_FAILOVERS, help="dispatches retried on a replica"
        )
        self._backend_errors = self.registry.counter(
            telemetry.GATEWAY_BACKEND_ERRORS,
            help="backend transport failures (connect/timeout/closed)",
        )
        self._latency = self.registry.histogram(
            telemetry.GATEWAY_REQUEST_SECONDS,
            help="end-to-end gateway request latency",
        )
        self._batch_sizes = self.registry.histogram(
            telemetry.GATEWAY_COALESCE_BATCH,
            buckets=telemetry.BATCH_SIZE_BUCKETS,
            help="seeds per coalesced backend solve",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Gateway":
        """Start the background health monitor (idempotent)."""
        if self._monitor_task is None and self.health_interval > 0:
            self._monitor_task = asyncio.create_task(
                self._monitor(), name="gateway-health-monitor"
            )
        return self

    async def close(self) -> None:
        """Stop the monitor, fail unfinished requests, close the backends."""
        if self._closed:
            return
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for handle in self._flush_handles.values():
            handle.cancel()
        self._flush_handles.clear()
        for batch in self._pending.values():
            for _, future, _ in batch:
                self._pending_total -= 1
                if not future.done():
                    future.set_exception(BackendError("gateway closed"))
        self._pending.clear()
        for backend in self.backends.values():
            await backend.close()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------
    async def query(self, seed: int) -> np.ndarray:
        """The dense ``(n,)`` RWR score row for one seed.

        Bit-identical to a direct ``WorkerPool.query_many`` call carrying
        the same coalesced seed set (seed *order* within a batch never
        affects the bits, and every replica answers a given batch
        identically — the artifacts are immutable).  Different batch
        compositions agree to solver tolerance, not bit-for-bit: the
        engine solves a batch's linear systems together.
        """
        return await self._submit(("dense",), int(seed))

    async def query_topk(
        self, seed: int, k: int, exclude_seed: bool = True
    ) -> np.ndarray:
        """The packed top-k ``(id, score)`` pair records for one seed
        (:data:`repro.core.topk.PAIR_DTYPE`; may be shorter than ``k``)."""
        k = validate_k(k)
        return await self._submit(("topk", k, bool(exclude_seed)), int(seed))

    async def stats(self) -> Dict[str, Any]:
        """Gateway-side serving state (admission, per-backend health)."""
        now = time.monotonic()
        batches = self._batch_sizes.count
        return {
            "pending": self._pending_total,
            "max_pending": self.max_pending,
            "shed_queue_depth": self.shed_queue_depth,
            "coalesce_window": self.coalesce_window,
            "requests": self._requests.value,
            "sheds": self._sheds.value,
            "failovers": self._failovers.value,
            "backend_errors": self._backend_errors.value,
            "coalesce": {
                "batches": batches,
                "mean_batch": self._batch_sizes.sum / batches if batches else 0.0,
            },
            "backends": {
                name: {
                    "healthy": now >= self._unhealthy_until.get(name, 0.0),
                    "queue_depth": self._depths.get(name),
                    "generation": self._generations.get(name),
                }
                for name in self.backends
            },
        }

    # ------------------------------------------------------------------
    # Admission + coalescing
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        self._requests.inc()
        if self._pending_total >= self.max_pending:
            self._sheds.inc()
            raise Overloaded(
                pending=self._pending_total,
                limit=self.max_pending,
                retry_after=max(self.coalesce_window * 4, 0.01),
            )
        if self.shed_queue_depth is not None:
            depths = [
                depth
                for name, depth in self._depths.items()
                if depth is not None and self._is_healthy(name)
            ]
            # Shed only when *every* live backend is over the limit — a
            # single deep replica is a routing problem, not an overload.
            if depths and min(depths) > self.shed_queue_depth:
                self._sheds.inc()
                raise Overloaded(
                    pending=self._pending_total,
                    limit=self.max_pending,
                    retry_after=max(self.health_interval, 0.05),
                )

    async def _submit(self, mode: Tuple, seed: int) -> Any:
        if self._closed:
            raise BackendError("gateway closed")
        self._admit()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # Sampling decision at admission: a sampled request mints a trace
        # id plus the root span id every later span parents under.
        trace_entry: Optional[Dict[str, Any]] = None
        trace_id = self.tracer.start_trace()
        if trace_id is not None:
            trace_entry = {
                "trace_id": trace_id,
                "root": tracing.mint_id(),
                "enqueued": time.time(),
            }
        self._pending.setdefault(mode, []).append((seed, future, trace_entry))
        self._pending_total += 1
        if mode not in self._flush_handles:
            self._flush_handles[mode] = loop.call_later(
                self.coalesce_window, self._flush, mode
            )
        start = time.perf_counter()
        error: Optional[BaseException] = None
        try:
            return await future
        except BaseException as exc:
            error = exc
            raise
        finally:
            elapsed = max(0.0, time.perf_counter() - start)
            if trace_entry is None:
                self._latency.observe(elapsed)
            else:
                self._latency.observe(
                    elapsed, exemplar=tracing.format_id(trace_id)
                )
                tags: Dict[str, Any] = {"seed": int(seed), "mode": mode[0]}
                if error is not None:
                    tags["error"] = type(error).__name__
                # The root record lands last — every child (including the
                # backend's, absorbed from the reply) is already in the
                # ring, so slow-query assembly sees the full breakdown.
                self.tracer.record(
                    tracing.make_record(
                        "gateway.request",
                        trace_id=trace_id,
                        span_id=trace_entry["root"],
                        parent_id=None,
                        start_time=trace_entry["enqueued"],
                        duration=elapsed,
                        tags=tags,
                    )
                )

    def _flush(self, mode: Tuple) -> None:
        """Flush timer fired: group the window's requests per shard and
        dispatch one batched backend call per group."""
        self._flush_handles.pop(mode, None)
        batch = self._pending.pop(mode, [])
        if not batch:
            return
        now = time.time()
        for seed, _, entry in batch:
            if entry is not None:
                self.tracer.record(
                    tracing.make_record(
                        "gateway.coalesce_wait",
                        trace_id=entry["trace_id"],
                        span_id=tracing.mint_id(),
                        parent_id=entry["root"],
                        start_time=entry["enqueued"],
                        duration=max(0.0, now - entry["enqueued"]),
                    )
                )
        groups: Dict[str, List[Tuple[int, asyncio.Future, Any]]] = {}
        for seed, future, entry in batch:
            groups.setdefault(self.ring.route(seed), []).append(
                (seed, future, entry)
            )
        for name, group in groups.items():
            asyncio.ensure_future(self._dispatch(mode, name, group))

    # ------------------------------------------------------------------
    # Dispatch + failover
    # ------------------------------------------------------------------
    def _is_healthy(self, name: str) -> bool:
        return time.monotonic() >= self._unhealthy_until.get(name, 0.0)

    def _mark_unhealthy(self, name: str) -> None:
        self._unhealthy_until[name] = time.monotonic() + self.failover_cooldown
        self._health_gauge(name).set(0.0)

    def _health_gauge(self, name: str):
        return self.registry.gauge(
            f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.healthy",
            help="1 = backend answering, 0 = cooling down after a failure",
        )

    def _record_generation(self, name: str, generation: Any) -> None:
        """Track the generation a backend reports serving.

        ``generation`` arrives as the pool's token (a resolved artifact
        path); only its final component — the ``gen-NNNNNN`` name for
        store-backed pools — is kept.  Store generations additionally
        export their numeric index as a gauge, so "replica stuck on an old
        generation" is a plottable, alertable signal rather than a string
        buried in stats.
        """
        gen_name = str(generation).rstrip("/").rsplit("/", 1)[-1] if generation else None
        self._generations[name] = gen_name
        if gen_name and gen_name.startswith("gen-"):
            suffix = gen_name[4:]
            if suffix.isdigit():
                self.registry.gauge(
                    f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.generation_index",
                    help="numeric index of the generation the backend serves",
                ).set(float(suffix))

    def _failover_chain(self, primary: str) -> List[str]:
        """Replicas to try, primary first; cooling-down backends move to
        the back of the chain rather than out of it (when everything is
        marked unhealthy there is nothing better to try)."""
        chain = [primary] + [n for n in self.ring.names if n != primary]
        return sorted(chain, key=lambda n: (not self._is_healthy(n),
                                            chain.index(n)))

    async def _dispatch(
        self, mode: Tuple, primary: str, group: List[Tuple[int, asyncio.Future, Any]]
    ) -> None:
        seeds = [seed for seed, _, _ in group]
        self._batch_sizes.observe(len(seeds))
        chain = self._failover_chain(primary)
        last_error: Optional[BaseException] = None
        for attempt, name in enumerate(chain):
            if attempt > 0:
                self._failovers.inc()
            backend = self.backends[name]
            # One backend span per traced origin request per attempt; the
            # (trace_id, span_id) contexts ride on the backend call so the
            # server's spans nest under them.
            spans = [
                (entry, tracing.mint_id())
                for _, _, entry in group
                if entry is not None
            ]
            contexts = [(entry["trace_id"], span_id) for entry, span_id in spans]
            # Only traced batches pass the kwarg, so backend stubs without
            # trace support keep working untraced.
            kwargs = {"trace": contexts} if contexts else {}
            started = time.time()
            start = time.perf_counter()
            try:
                if mode[0] == "dense":
                    scores = await asyncio.wait_for(
                        backend.query_many(seeds, **kwargs),
                        self.request_timeout,
                    )
                    rows: List[Any] = [scores[i] for i in range(len(seeds))]
                else:
                    _, k, exclude_seed = mode
                    rows = list(
                        await asyncio.wait_for(
                            backend.query_topk_many(
                                seeds, k, exclude_seed, **kwargs
                            ),
                            self.request_timeout,
                        )
                    )
            except (BackendError, TimeoutError) as exc:
                last_error = exc
                self._backend_errors.inc()
                self._mark_unhealthy(name)
                self._record_backend_spans(
                    spans, name, attempt, started, start, error=exc
                )
                continue
            except Exception as exc:  # QueryError, Overloaded, bugs
                self._record_backend_spans(
                    spans, name, attempt, started, start, error=exc
                )
                self._resolve(group, error=exc)
                return
            self._health_gauge(name).set(1.0)
            self._record_backend_spans(spans, name, attempt, started, start)
            self._resolve(group, rows=rows)
            return
        self._resolve(
            group,
            error=BackendError(
                f"all {len(chain)} replica(s) failed for this shard "
                f"(last: {last_error})"
            ),
        )

    def _record_backend_spans(
        self,
        spans: List[Tuple[Dict[str, Any], int]],
        name: str,
        attempt: int,
        started: float,
        start: float,
        error: Optional[BaseException] = None,
    ) -> None:
        """Emit the ``gateway.backend`` span (routing + socket RTT + server
        time) of one dispatch attempt into every origin request's trace."""
        if not spans:
            return
        duration = max(0.0, time.perf_counter() - start)
        tags: Dict[str, Any] = {"backend": name, "attempt": attempt}
        if error is not None:
            tags["error"] = type(error).__name__
        for entry, span_id in spans:
            self.tracer.record(
                tracing.make_record(
                    "gateway.backend",
                    trace_id=entry["trace_id"],
                    span_id=span_id,
                    parent_id=entry["root"],
                    start_time=started,
                    duration=duration,
                    tags=tags,
                )
            )

    def _resolve(
        self,
        group: List[Tuple[int, asyncio.Future, Any]],
        rows: Optional[List[Any]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        for index, (_, future, _) in enumerate(group):
            self._pending_total -= 1
            if future.done():  # caller gave up (cancelled) — drop quietly
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(rows[index])

    # ------------------------------------------------------------------
    # Health monitor
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        while True:
            for name, backend in list(self.backends.items()):
                depth_gauge = self.registry.gauge(
                    f"{telemetry.GATEWAY_BACKEND_PREFIX}{name}.queue_depth",
                    help="queue depth the backend last reported",
                )
                try:
                    stats = await asyncio.wait_for(
                        backend.stats(), min(self.health_interval, 5.0)
                    )
                except (BackendError, QueryError, Overloaded, TimeoutError):
                    self._depths.pop(name, None)
                    self._health_gauge(name).set(0.0)
                    continue
                depth = float(stats.get("queue_depth") or 0)
                self._depths[name] = depth
                depth_gauge.set(depth)
                self._record_generation(name, stats.get("generation"))
                # A live stats reply is proof of recovery: clear any
                # failure cooldown instead of waiting it out.
                self._unhealthy_until.pop(name, None)
                self._health_gauge(name).set(1.0)
                # Full registry snapshot for fleet aggregation — best
                # effort; a failed poll keeps the previous snapshot.
                poll = getattr(backend, "metrics_snapshot", None)
                if poll is not None:
                    try:
                        snapshot = await asyncio.wait_for(
                            poll(), min(self.health_interval, 5.0)
                        )
                    except (BackendError, QueryError, Overloaded, TimeoutError):
                        pass
                    else:
                        if snapshot:
                            self._fleet_snapshots[name] = snapshot
            await asyncio.sleep(self.health_interval)

    # ------------------------------------------------------------------
    # Fleet aggregation
    # ------------------------------------------------------------------
    def fleet_registry(self) -> MetricsRegistry:
        """One merged registry over the gateway's own metrics and every
        backend's last-polled snapshot (counters/gauges sum, histograms
        merge bucket-wise), so fleet-wide p50/p95/p99 read like a
        single-process run."""
        self.tracer.export_to(self.registry)
        return telemetry.merge_snapshots(
            list(self._fleet_snapshots.values()) + [self.registry.snapshot()]
        )

    def fleet_snapshot(self) -> Dict[str, Any]:
        """The fleet observability document ``repro top`` renders.

        Carries the gateway's own snapshot, each backend's last-polled
        snapshot keyed by backend name, the merged fleet registry, the
        per-backend serving generations, the tracer's counters and the
        recent slow-query log.
        """
        merged = self.fleet_registry()
        return {
            "schema": FLEET_SCHEMA,
            "gateway": self.registry.snapshot(),
            "backends": dict(self._fleet_snapshots),
            "merged": merged.snapshot(),
            "generations": dict(self._generations),
            "trace": self.tracer.stats(),
            "slow_queries": self.tracer.slow_queries(),
        }

    def fleet_prometheus(self) -> str:
        """Prometheus exposition of the whole fleet: the gateway's own
        series unlabelled, plus every backend's series labelled
        ``backend="<name>"`` (names are escaped, so arbitrary endpoint
        strings cannot break line validity)."""
        self.tracer.export_to(self.registry)
        parts = [self.registry.to_prometheus()]
        for name in sorted(self._fleet_snapshots):
            registry = MetricsRegistry.from_snapshot(self._fleet_snapshots[name])
            parts.append(registry.to_prometheus(labels={"backend": name}))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Gateway({list(self.backends)}, window={self.coalesce_window}, "
            f"max_pending={self.max_pending})"
        )


# ----------------------------------------------------------------------
# Socket servers
# ----------------------------------------------------------------------
class _WireServer:
    """Shared asyncio socket-server scaffolding (accept/read/dispatch)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0`` (ephemeral)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await wire.read_message(reader)
                except wire.ProtocolError as exc:
                    await wire.write_message(writer, wire.ErrorReply(str(exc)))
                    break
                if request is None:
                    break
                reply = await self._answer(request)
                await wire.write_message(writer, reply)
        except (ConnectionError, OSError):  # peer vanished mid-reply
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass

    async def _answer(self, request: wire.Request) -> wire.Reply:
        raise NotImplementedError


class PoolServer(_WireServer):
    """A :class:`~repro.serve.WorkerPool` behind the wire protocol.

    This is what ``repro serve --listen HOST:PORT`` runs: one of these
    per host, N of them behind a :class:`Gateway`.  Pool calls funnel
    through a single-thread executor (the pool's collection loop is
    single-caller); ``shed_queue_depth`` bounds the number of requests
    waiting on that executor before the server answers
    ``REPLY_OVERLOADED`` instead of queueing deeper.
    """

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        shed_queue_depth: Optional[int] = None,
    ):
        super().__init__(host, port)
        self.pool = pool
        self.shed_queue_depth = shed_queue_depth
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pool-server"
        )
        self._inflight = 0

    async def close(self) -> None:
        await super().close()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        self._inflight += 1
        try:
            return await loop.run_in_executor(self._executor, partial(fn, *args))
        finally:
            self._inflight -= 1

    def _depth(self) -> int:
        stats_depth = 0
        for task_queue in self.pool._task_queues:
            try:
                stats_depth += int(task_queue.qsize())
            except (NotImplementedError, OSError):  # pragma: no cover
                pass
        return stats_depth + self._inflight

    def _pop_trace_records(
        self, trace: Sequence[Tuple[int, int]]
    ) -> Tuple[Dict[str, Any], ...]:
        """Pull the span records of a traced request out of this process's
        tracer ring so they travel back on the wire reply (the caller's
        gateway absorbs them — the trace lives where the request began)."""
        if not trace:
            return ()
        return tuple(
            tracing.get_tracer().pop_trace_records(
                [trace_id for trace_id, _ in trace]
            )
        )

    async def _answer(self, request: wire.Request) -> wire.Reply:
        try:
            if isinstance(request, wire.QueryRequest):
                if self._shedding():
                    return self._overloaded()
                scores = await self._run(
                    partial(
                        self.pool.query_many,
                        [int(s) for s in request.seeds],
                        trace=list(request.trace) or None,
                    )
                )
                return wire.DenseReply(
                    scores=scores,
                    trace_records=self._pop_trace_records(request.trace),
                )
            if isinstance(request, wire.TopKRequest):
                if self._shedding():
                    return self._overloaded()
                results = await self._run(
                    partial(
                        self.pool.query_topk_many,
                        [int(s) for s in request.seeds],
                        request.k,
                        request.exclude_seed,
                        trace=list(request.trace) or None,
                    )
                )
                return wire.TopKReply(
                    pairs=[to_pairs(r) for r in results],
                    trace_records=self._pop_trace_records(request.trace),
                )
            if isinstance(request, wire.MetricsRequest):
                registry = await self._run(self.pool.metrics)
                tracing.get_tracer().export_to(registry)
                return wire.StatsReply(stats=registry.snapshot())
            if isinstance(request, wire.StatsRequest):
                stats = await self._run(self.pool.pool_stats)
                worker_stats = self.pool.worker_stats()
                return wire.StatsReply(
                    stats={
                        "queue_depth": self._depth(),
                        "generation": stats.get("generation"),
                        "n_workers": stats.get("n_workers"),
                        "n_nodes": (
                            worker_stats[0].get("n_nodes")
                            if worker_stats else None
                        ),
                        "queries_submitted": stats.get("queries_submitted"),
                        "worker_restarts": stats.get("worker_restarts"),
                    }
                )
        except (WorkerError, InvalidParameterError) as exc:
            return wire.ErrorReply(f"{type(exc).__name__}: {exc}")
        return wire.ErrorReply(
            f"pool server cannot answer {type(request).__name__}"
        )

    def _shedding(self) -> bool:
        return (
            self.shed_queue_depth is not None
            and self._depth() > self.shed_queue_depth
        )

    def _overloaded(self) -> wire.OverloadedReply:
        return wire.OverloadedReply(
            pending=self._depth(),
            limit=int(self.shed_queue_depth or 0),
            retry_after=0.05,
        )


class GatewayServer(_WireServer):
    """A :class:`Gateway` behind the wire protocol (the client-facing hop).

    Every seed of an incoming request goes through the gateway's
    coalescer individually, so concurrent client connections merge into
    shared backend solves; a multi-seed request is simply N coalescable
    requests that happen to arrive together.
    """

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1", port: int = 0):
        super().__init__(host, port)
        self.gateway = gateway

    async def _answer(self, request: wire.Request) -> wire.Reply:
        try:
            if isinstance(request, wire.QueryRequest):
                rows = await self._gather(
                    [self.gateway.query(int(s)) for s in request.seeds]
                )
                scores = (
                    np.vstack(rows)
                    if rows
                    else np.empty((0, 0), dtype=np.float64)
                )
                return wire.DenseReply(scores=scores)
            if isinstance(request, wire.TopKRequest):
                pairs = await self._gather(
                    [
                        self.gateway.query_topk(
                            int(s), request.k, request.exclude_seed
                        )
                        for s in request.seeds
                    ]
                )
                return wire.TopKReply(pairs=list(pairs))
            if isinstance(request, wire.StatsRequest):
                return wire.StatsReply(stats=await self.gateway.stats())
            if isinstance(request, wire.MetricsRequest):
                return wire.StatsReply(stats=self.gateway.fleet_snapshot())
        except Overloaded as exc:
            return wire.OverloadedReply(
                pending=exc.pending, limit=exc.limit, retry_after=exc.retry_after
            )
        except (QueryError, BackendError, InvalidParameterError) as exc:
            return wire.ErrorReply(f"{type(exc).__name__}: {exc}")
        return wire.ErrorReply(
            f"gateway cannot answer {type(request).__name__}"
        )

    @staticmethod
    async def _gather(coros: List[Any]) -> List[Any]:
        """Gather that re-raises the highest-priority failure after every
        branch settled (a plain ``gather`` abandons siblings whose
        exceptions then log as never-retrieved)."""
        results = await asyncio.gather(*coros, return_exceptions=True)
        for exception_type in (Overloaded, QueryError, BackendError):
            for result in results:
                if isinstance(result, exception_type):
                    raise result
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results
