"""Length-prefixed binary wire protocol for the serve tier.

One protocol connects all three remote pieces of the serving stack: load
generators talk to the :class:`repro.gateway.GatewayServer`, and the
gateway talks to ``repro serve --listen`` pool backends — the frames are
identical in both hops, so a client can also bypass the gateway and hit a
pool directly.

Frame layout
------------
Every message (request or reply) is one *frame*::

    u32  length      little-endian byte count of the payload that follows
    u8   version     protocol version (currently 3; v1/v2 frames still parse)
    u8   opcode      message type
    ...  body        opcode-specific, fixed little-endian layout

Requests
--------
``OP_QUERY``
    ``u32 n_seeds`` then ``n_seeds`` ``i64`` seed ids.  Answered with a
    ``REPLY_DENSE`` frame of ``n_seeds`` dense float64 score rows.
``OP_TOPK``
    ``u32 n_seeds``, ``u32 k``, ``u8 exclude_seed`` then ``n_seeds``
    ``i64`` seed ids.  Answered with a ``REPLY_TOPK`` frame carrying the
    existing 16-byte ``(int64 id, float64 score)`` pair records of
    :data:`repro.core.topk.PAIR_DTYPE` — the same payload shrink the
    in-process top-k path buys, now across hosts.
``OP_STATS``
    Empty body; answered with a ``REPLY_STATS`` JSON document (queue
    depth, generation, supervision counters).  This is what the gateway's
    health monitor polls for backpressure and failover decisions.
``OP_METRICS``
    Empty body; answered with a ``REPLY_STATS`` frame whose JSON is a
    full :meth:`repro.telemetry.MetricsRegistry.snapshot` — the fleet
    aggregation feed (gateway merges per-backend snapshots; ``repro
    top`` renders them).

Trace context (protocol v2)
---------------------------
``OP_QUERY`` and ``OP_TOPK`` bodies may end with an optional trace
trailer::

    u32  n_ctx       trace contexts attached to this request
    ...  n_ctx x (u64 trace_id, u64 span_id)

One context per *origin* request riding in the frame (a gateway batch
coalesced from several sampled requests carries several).  The trailer
is optional in both directions — a v1 frame has no trailer, and a v2
frame with ``n_ctx == 0`` is untraced.  Symmetrically, ``REPLY_DENSE``
and ``REPLY_TOPK`` may end with ``u32 blob_len`` + UTF-8 JSON list of
finished span records, carrying the server-side span tree back to the
caller so the gateway can assemble one end-to-end trace.

Deadline budget (protocol v3)
-----------------------------
After the trace trailer, ``OP_QUERY`` and ``OP_TOPK`` bodies may carry a
deadline trailer::

    f8   deadline_ms   remaining request budget, in milliseconds

The budget is *relative* (remaining time, not a wall-clock instant) so
it survives clock skew between hosts; each hop re-computes the remainder
at send time.  Absent trailer (v1/v2 frames, or a v3 frame whose body
ends at the trace trailer) means no deadline.  Symmetrically,
``REPLY_DENSE`` and ``REPLY_TOPK`` may end, after the trace-record
trailer, with a degraded-reply trailer::

    u8   degraded      1 when the answer is approximate / stale
    f8   error_bound   per-score bound the degraded answer satisfies

The trailer is only written for degraded replies, so exact answers cost
no extra bytes and v2 readers never see it.

Replies
-------
``REPLY_DENSE``
    ``u32 rows``, ``u64 cols`` then ``rows * cols`` ``f8`` scores
    (+ optional trace-record trailer, above).
``REPLY_TOPK``
    ``u32 n_seeds`` then per seed ``u32 n_pairs`` + ``n_pairs`` 16-byte
    pair records (``n_pairs`` can be below the requested ``k`` when the
    candidate pool was smaller — the documented clamp semantics)
    (+ optional trace-record trailer, above).
``REPLY_STATS``
    UTF-8 JSON for the rest of the payload.
``REPLY_ERROR``
    UTF-8 error message; the request failed and retrying it unchanged
    will fail again (bad seed id, unknown opcode).
``REPLY_OVERLOADED``
    UTF-8 JSON ``{"pending": .., "limit": .., "retry_after": ..}``; the
    server *shed* the request instead of queueing it unboundedly.
    Retrying after ``retry_after`` seconds is expected to succeed.

Integers and floats are little-endian on the wire (the native layout on
every deployment target, so encoding is zero-copy); the explicit dtypes
keep a big-endian host correct, just slower.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import faults

PROTOCOL_VERSION = 3

#: Versions :func:`decode_message` accepts.  v1 frames carry no trace
#: trailer, v2 frames no deadline/degraded trailer; everything else is
#: identical, so old clients keep working.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Upper bound on a single frame; a corrupt length prefix must not make a
#: reader allocate gigabytes.  1 GiB fits a ~16k-seed dense reply at
#: scale 23 — far beyond what the gateway ever batches.
MAX_FRAME_BYTES = 1 << 30

OP_QUERY = 1
OP_TOPK = 2
OP_STATS = 3
OP_METRICS = 4

REPLY_DENSE = 16
REPLY_TOPK = 17
REPLY_STATS = 18
REPLY_ERROR = 19
REPLY_OVERLOADED = 20

_LEN = struct.Struct("<I")
_HEADER = struct.Struct("<BB")  # version, opcode
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_TOPK_HEAD = struct.Struct("<IIB")  # n_seeds, k, exclude_seed
_TRACE_CTX = struct.Struct("<QQ")  # trace_id, span_id
_DEADLINE = struct.Struct("<d")  # remaining budget, milliseconds
_DEGRADED = struct.Struct("<Bd")  # degraded flag, error bound

#: Explicit little-endian layouts for the array payloads.
WIRE_SEED_DTYPE = np.dtype("<i8")
WIRE_SCORE_DTYPE = np.dtype("<f8")
WIRE_PAIR_DTYPE = np.dtype([("id", "<i8"), ("score", "<f8")])


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not parse as a protocol frame."""


# ----------------------------------------------------------------------
# Message dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class QueryRequest:
    """Dense scores for a batch of seeds."""

    seeds: np.ndarray  # (n,) int64
    #: ``(trace_id, span_id)`` pairs — one per traced origin request.
    trace: Tuple[Tuple[int, int], ...] = ()
    #: Remaining request budget in milliseconds; ``None`` = no deadline.
    deadline_ms: Optional[float] = None

    opcode = OP_QUERY


@dataclass(frozen=True, eq=False)
class TopKRequest:
    """Top-k (id, score) pairs for a batch of seeds."""

    seeds: np.ndarray  # (n,) int64
    k: int
    exclude_seed: bool = True
    #: ``(trace_id, span_id)`` pairs — one per traced origin request.
    trace: Tuple[Tuple[int, int], ...] = ()
    #: Remaining request budget in milliseconds; ``None`` = no deadline.
    deadline_ms: Optional[float] = None

    opcode = OP_TOPK


@dataclass(frozen=True)
class StatsRequest:
    """Server-side stats (health/backpressure probe)."""

    opcode = OP_STATS


@dataclass(frozen=True)
class MetricsRequest:
    """Full telemetry registry snapshot (fleet aggregation feed)."""

    opcode = OP_METRICS


@dataclass(frozen=True, eq=False)
class DenseReply:
    scores: np.ndarray  # (rows, cols) float64
    #: Finished span records (JSON-able dicts) from the serving side.
    trace_records: Tuple[Dict[str, Any], ...] = ()
    #: ``True`` when the answer is approximate/stale (degradation ladder).
    degraded: bool = False
    #: Per-score error bound a degraded answer satisfies (0.0 = exact).
    error_bound: float = 0.0

    opcode = REPLY_DENSE


@dataclass(frozen=True, eq=False)
class TopKReply:
    #: One PAIR_DTYPE array per requested seed, in request order.
    pairs: List[np.ndarray] = field(default_factory=list)
    #: Finished span records (JSON-able dicts) from the serving side.
    trace_records: Tuple[Dict[str, Any], ...] = ()
    #: ``True`` when the answer is approximate/stale (degradation ladder).
    degraded: bool = False
    #: Per-score error bound a degraded answer satisfies (0.0 = exact).
    error_bound: float = 0.0

    opcode = REPLY_TOPK


@dataclass(frozen=True)
class StatsReply:
    stats: Dict[str, Any] = field(default_factory=dict)

    opcode = REPLY_STATS


@dataclass(frozen=True)
class ErrorReply:
    message: str

    opcode = REPLY_ERROR


@dataclass(frozen=True)
class OverloadedReply:
    """Typed shed: the server refused the request under backpressure."""

    pending: int = 0
    limit: int = 0
    retry_after: float = 0.05

    opcode = REPLY_OVERLOADED


Request = Union[QueryRequest, TopKRequest, StatsRequest, MetricsRequest]
Reply = Union[DenseReply, TopKReply, StatsReply, ErrorReply, OverloadedReply]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _seed_bytes(seeds: Sequence[int]) -> bytes:
    return np.ascontiguousarray(seeds, dtype=WIRE_SEED_DTYPE).tobytes()


def _encode_trace(trace: Sequence[Tuple[int, int]]) -> bytes:
    parts = [_U32.pack(len(trace))]
    for trace_id, span_id in trace:
        parts.append(_TRACE_CTX.pack(int(trace_id), int(span_id)))
    return b"".join(parts)


def _encode_trace_records(records: Sequence[Dict[str, Any]]) -> bytes:
    blob = json.dumps(list(records)).encode("utf-8")
    return _U32.pack(len(blob)) + blob


def _encode_deadline(deadline_ms: Optional[float]) -> bytes:
    if deadline_ms is None:
        return b""
    return _DEADLINE.pack(float(deadline_ms))


def _encode_degraded(degraded: bool, error_bound: float) -> bytes:
    if not degraded:
        return b""
    return _DEGRADED.pack(1, float(error_bound))


def encode_message(message: Union[Request, Reply]) -> bytes:
    """Serialize a request or reply into a frame payload (no length prefix)."""
    head = _HEADER.pack(PROTOCOL_VERSION, message.opcode)
    if isinstance(message, QueryRequest):
        seeds = _seed_bytes(message.seeds)
        return (
            head + _U32.pack(len(seeds) // 8) + seeds
            + _encode_trace(message.trace)
            + _encode_deadline(message.deadline_ms)
        )
    if isinstance(message, TopKRequest):
        seeds = _seed_bytes(message.seeds)
        return (
            head
            + _TOPK_HEAD.pack(len(seeds) // 8, int(message.k), int(message.exclude_seed))
            + seeds
            + _encode_trace(message.trace)
            + _encode_deadline(message.deadline_ms)
        )
    if isinstance(message, StatsRequest):
        return head
    if isinstance(message, MetricsRequest):
        return head
    if isinstance(message, DenseReply):
        scores = np.ascontiguousarray(message.scores, dtype=WIRE_SCORE_DTYPE)
        if scores.ndim != 2:
            raise ProtocolError(
                f"dense reply must be 2-D (rows, cols), got shape {scores.shape}"
            )
        rows, cols = scores.shape
        return (
            head + _U32.pack(rows) + _U64.pack(cols) + scores.tobytes()
            + _encode_trace_records(message.trace_records)
            + _encode_degraded(message.degraded, message.error_bound)
        )
    if isinstance(message, TopKReply):
        parts = [head, _U32.pack(len(message.pairs))]
        for packed in message.pairs:
            wire = np.ascontiguousarray(packed).astype(WIRE_PAIR_DTYPE, copy=False)
            parts.append(_U32.pack(len(wire)))
            parts.append(wire.tobytes())
        parts.append(_encode_trace_records(message.trace_records))
        parts.append(_encode_degraded(message.degraded, message.error_bound))
        return b"".join(parts)
    if isinstance(message, StatsReply):
        return head + json.dumps(message.stats).encode("utf-8")
    if isinstance(message, ErrorReply):
        return head + message.message.encode("utf-8")
    if isinstance(message, OverloadedReply):
        body = {
            "pending": int(message.pending),
            "limit": int(message.limit),
            "retry_after": float(message.retry_after),
        }
        return head + json.dumps(body).encode("utf-8")
    raise ProtocolError(f"cannot encode {type(message).__name__}")


def decode_message(payload: bytes) -> Union[Request, Reply]:
    """Parse a frame payload back into its message dataclass."""
    if len(payload) < _HEADER.size:
        raise ProtocolError(f"frame too short ({len(payload)} bytes)")
    version, opcode = _HEADER.unpack_from(payload)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    body = payload[_HEADER.size:]
    try:
        if opcode == OP_QUERY:
            (n,) = _U32.unpack_from(body)
            seeds = _read_array(body, _U32.size, n, WIRE_SEED_DTYPE)
            offset = _U32.size + n * WIRE_SEED_DTYPE.itemsize
            trace = ()
            if version >= 2:
                trace, offset = _decode_trace(body, offset)
            deadline = _decode_deadline(body, offset) if version >= 3 else None
            return QueryRequest(seeds=seeds, trace=trace, deadline_ms=deadline)
        if opcode == OP_TOPK:
            n, k, exclude = _TOPK_HEAD.unpack_from(body)
            seeds = _read_array(body, _TOPK_HEAD.size, n, WIRE_SEED_DTYPE)
            offset = _TOPK_HEAD.size + n * WIRE_SEED_DTYPE.itemsize
            trace = ()
            if version >= 2:
                trace, offset = _decode_trace(body, offset)
            deadline = _decode_deadline(body, offset) if version >= 3 else None
            return TopKRequest(
                seeds=seeds, k=int(k), exclude_seed=bool(exclude),
                trace=trace, deadline_ms=deadline,
            )
        if opcode == OP_STATS:
            return StatsRequest()
        if opcode == OP_METRICS:
            return MetricsRequest()
        if opcode == REPLY_DENSE:
            (rows,) = _U32.unpack_from(body)
            (cols,) = _U64.unpack_from(body, _U32.size)
            flat = _read_array(
                body, _U32.size + _U64.size, rows * cols, WIRE_SCORE_DTYPE
            )
            offset = _U32.size + _U64.size + rows * cols * WIRE_SCORE_DTYPE.itemsize
            records = ()
            if version >= 2:
                records, offset = _decode_trace_records(body, offset)
            degraded, bound = (
                _decode_degraded(body, offset) if version >= 3 else (False, 0.0)
            )
            return DenseReply(
                scores=flat.reshape(rows, cols), trace_records=records,
                degraded=degraded, error_bound=bound,
            )
        if opcode == REPLY_TOPK:
            (n,) = _U32.unpack_from(body)
            offset = _U32.size
            pairs: List[np.ndarray] = []
            for _ in range(n):
                (n_pairs,) = _U32.unpack_from(body, offset)
                offset += _U32.size
                packed = _read_array(body, offset, n_pairs, WIRE_PAIR_DTYPE)
                offset += n_pairs * WIRE_PAIR_DTYPE.itemsize
                pairs.append(packed)
            records = ()
            if version >= 2:
                records, offset = _decode_trace_records(body, offset)
            degraded, bound = (
                _decode_degraded(body, offset) if version >= 3 else (False, 0.0)
            )
            return TopKReply(
                pairs=pairs, trace_records=records,
                degraded=degraded, error_bound=bound,
            )
        if opcode == REPLY_STATS:
            return StatsReply(stats=json.loads(body.decode("utf-8")))
        if opcode == REPLY_ERROR:
            return ErrorReply(message=body.decode("utf-8", errors="replace"))
        if opcode == REPLY_OVERLOADED:
            info = json.loads(body.decode("utf-8"))
            return OverloadedReply(
                pending=int(info.get("pending", 0)),
                limit=int(info.get("limit", 0)),
                retry_after=float(info.get("retry_after", 0.05)),
            )
    except ProtocolError:
        raise
    except (struct.error, ValueError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame body for opcode {opcode}: {exc}") from exc
    raise ProtocolError(f"unknown opcode {opcode}")


def _decode_trace(
    body: bytes, offset: int
) -> Tuple[Tuple[Tuple[int, int], ...], int]:
    """The optional trace trailer; absent (body ends) means untraced.

    Returns ``(trace, end_offset)`` so later trailers know where they
    start.
    """
    if offset >= len(body):
        return (), offset
    (n_ctx,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    end = offset + n_ctx * _TRACE_CTX.size
    if end > len(body):
        raise ProtocolError(
            f"truncated trace trailer: need {end} body bytes, have {len(body)}"
        )
    trace = tuple(
        _TRACE_CTX.unpack_from(body, offset + i * _TRACE_CTX.size)
        for i in range(n_ctx)
    )
    return trace, end


def _decode_trace_records(
    body: bytes, offset: int
) -> Tuple[Tuple[Dict[str, Any], ...], int]:
    """The optional span-record trailer on replies; absent means none.

    Returns ``(records, end_offset)`` so later trailers know where they
    start.
    """
    if offset >= len(body):
        return (), offset
    (blob_len,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    if offset + blob_len > len(body):
        raise ProtocolError(
            f"truncated trace-record trailer: need {offset + blob_len} body "
            f"bytes, have {len(body)}"
        )
    records = json.loads(body[offset:offset + blob_len].decode("utf-8"))
    if not isinstance(records, list):
        raise ProtocolError("trace-record trailer must be a JSON list")
    return tuple(records), offset + blob_len


def _decode_deadline(body: bytes, offset: int) -> Optional[float]:
    """The optional deadline trailer on requests; absent means no budget."""
    if offset >= len(body):
        return None
    if offset + _DEADLINE.size > len(body):
        raise ProtocolError(
            f"truncated deadline trailer: need {offset + _DEADLINE.size} body "
            f"bytes, have {len(body)}"
        )
    (deadline_ms,) = _DEADLINE.unpack_from(body, offset)
    return float(deadline_ms)


def _decode_degraded(body: bytes, offset: int) -> Tuple[bool, float]:
    """The optional degraded trailer on replies; absent means exact."""
    if offset >= len(body):
        return False, 0.0
    if offset + _DEGRADED.size > len(body):
        raise ProtocolError(
            f"truncated degraded trailer: need {offset + _DEGRADED.size} body "
            f"bytes, have {len(body)}"
        )
    flag, bound = _DEGRADED.unpack_from(body, offset)
    return bool(flag), float(bound)


def _read_array(body: bytes, offset: int, count: int, dtype: np.dtype) -> np.ndarray:
    end = offset + count * dtype.itemsize
    if end > len(body):
        raise ProtocolError(
            f"truncated frame: need {end} body bytes, have {len(body)}"
        )
    # .copy() detaches the array from the receive buffer so the frame's
    # bytes object can be released immediately.
    return np.frombuffer(body, dtype=dtype, count=count, offset=offset).copy()


# ----------------------------------------------------------------------
# Frame transport — asyncio streams and blocking sockets
# ----------------------------------------------------------------------
def pack_frame(payload: bytes) -> bytes:
    """Prefix a payload with its little-endian u32 length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(payload)) + payload


def _corrupt_payload(payload: bytes) -> bytes:
    # Flip the version byte: deterministic, and guaranteed to surface as
    # a ProtocolError at the peer instead of a silent score bit-flip.
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


async def write_message(
    writer: asyncio.StreamWriter,
    message: Union[Request, Reply],
    *,
    endpoint: Optional[str] = None,
) -> None:
    """Encode, frame and flush one message on an asyncio stream.

    ``endpoint`` labels the link for network fault injection; the label
    is matched against :class:`repro.faults.ConnectionDrop` /
    :class:`~repro.faults.SlowLink` / :class:`~repro.faults.FrameCorrupt`
    specs of the installed plan (no plan → zero overhead).
    """
    actions = faults.wire_actions(endpoint) if endpoint is not None else None
    payload = encode_message(message)
    if actions is not None:
        if actions.delay:
            await asyncio.sleep(actions.delay)
        if actions.drop:
            raise ConnectionResetError(
                f"fault injection: connection to {endpoint!r} dropped"
            )
        if actions.corrupt:
            payload = _corrupt_payload(payload)
    writer.write(pack_frame(payload))
    await writer.drain()


async def read_message(
    reader: asyncio.StreamReader,
    *,
    timeout: Optional[float] = None,
    endpoint: Optional[str] = None,
) -> Optional[Union[Request, Reply]]:
    """Read one framed message; ``None`` on a clean EOF between frames.

    ``timeout`` bounds *every* partial read — a peer that accepts the
    connection but trickles (or never finishes) a frame cannot hold the
    reader past the budget; expiry raises :class:`ProtocolError`.
    """
    actions = faults.wire_actions(endpoint) if endpoint is not None else None
    if actions is not None:
        if actions.delay:
            await asyncio.sleep(actions.delay)
        if actions.drop:
            raise ConnectionResetError(
                f"fault injection: connection to {endpoint!r} dropped"
            )
    deadline = None if timeout is None else time.monotonic() + timeout

    async def _readexactly(count: int, what: str) -> bytes:
        if deadline is None:
            return await reader.readexactly(count)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ProtocolError(f"read timed out {what}")
        try:
            return await asyncio.wait_for(reader.readexactly(count), remaining)
        except asyncio.TimeoutError as exc:
            raise ProtocolError(f"read timed out {what}") from exc

    try:
        prefix = await _readexactly(_LEN.size, "waiting for a frame")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    try:
        payload = await _readexactly(length, "mid-frame")
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_message(payload)


def send_message(
    sock: socket.socket,
    message: Union[Request, Reply],
    *,
    endpoint: Optional[str] = None,
) -> None:
    """Blocking-socket counterpart of :func:`write_message`."""
    actions = faults.wire_actions(endpoint) if endpoint is not None else None
    payload = encode_message(message)
    if actions is not None:
        if actions.delay:
            time.sleep(actions.delay)
        if actions.drop:
            raise ConnectionResetError(
                f"fault injection: connection to {endpoint!r} dropped"
            )
        if actions.corrupt:
            payload = _corrupt_payload(payload)
    sock.sendall(pack_frame(payload))


def recv_message(
    sock: socket.socket,
    *,
    timeout: Optional[float] = None,
    endpoint: Optional[str] = None,
) -> Optional[Union[Request, Reply]]:
    """Blocking-socket counterpart of :func:`read_message`.

    ``timeout`` bounds every partial read of the frame (see
    :func:`read_message`); expiry raises :class:`ProtocolError`.
    """
    actions = faults.wire_actions(endpoint) if endpoint is not None else None
    if actions is not None:
        if actions.delay:
            time.sleep(actions.delay)
        if actions.drop:
            raise ConnectionResetError(
                f"fault injection: connection to {endpoint!r} dropped"
            )
    deadline = None if timeout is None else time.monotonic() + timeout
    prefix = _recv_exactly(sock, _LEN.size, deadline, "waiting for a frame")
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    payload = _recv_exactly(sock, length, deadline, "mid-frame")
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_message(payload)


def _recv_exactly(
    sock: socket.socket,
    count: int,
    deadline: Optional[float] = None,
    what: str = "mid-frame",
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    original_timeout = sock.gettimeout() if deadline is not None else None
    try:
        while remaining:
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise ProtocolError(f"read timed out {what}")
                sock.settimeout(budget)
            try:
                chunk = sock.recv(remaining)
            except socket.timeout as exc:
                raise ProtocolError(f"read timed out {what}") from exc
            if not chunk:
                if remaining == count:
                    return None  # clean close between frames
                raise ProtocolError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
    finally:
        if deadline is not None:
            sock.settimeout(original_timeout)
    return b"".join(chunks)
