"""Multi-process query serving over memory-mapped artifact directories.

The payoff of the build/serve split: once preprocessing has been exported
with :func:`repro.persistence.save_artifacts`, any number of worker
processes can serve Algorithm 4 queries against the *same* on-disk bundle.
Each worker opens the directory with ``mmap_mode="r"``, so

- startup is near-instant (no decompression, nothing is read until the
  first query touches it),
- the matrices live in the OS page cache **once**, shared by every worker
  on the machine, instead of once per process as with the ``.npz`` format,
- the mappings are read-only, so no worker can corrupt another's state.

:func:`open_query_engine` is the single-process entry point (give it an
artifact directory, a store root, or a ``.npz`` archive);
:class:`WorkerPool` manages a set of worker processes answering
``query_many`` batches over task queues, and is what
``repro-cli serve`` and the serving benchmark build on.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import os
import queue
import signal
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, telemetry, tracing
from repro.bench.memory import process_rss_bytes
from repro.core.engine import (
    BearQueryEngine,
    BePIQueryEngine,
    QueryEngine,
    SolverArtifacts,
)
from repro.core.topk import TopKResult, from_pairs, to_pairs, validate_k
from repro.exceptions import GraphFormatError, InvalidParameterError
from repro.faults import FaultPlan
from repro.persistence import PathLike, load_artifacts
from repro.store import ArtifactStore
from repro.telemetry import MetricsRegistry

#: Seconds a pool waits for a worker reply before giving up.
DEFAULT_TIMEOUT = 300.0

#: Seconds between liveness checks while waiting on the result queue.
POLL_INTERVAL = 0.1

#: Respawns allowed per worker slot before it is taken out of rotation.
DEFAULT_MAX_RESPAWNS = 3

#: Dispatch attempts per request before the caller sees a WorkerError.
DEFAULT_MAX_RETRIES = 3

#: First respawn backoff (seconds); doubles per respawn of the same slot.
DEFAULT_RESPAWN_BACKOFF = 0.25

#: Cap on the exponential respawn backoff.
MAX_RESPAWN_BACKOFF = 30.0

#: Default capacity of the pool's generation-keyed top-k result cache.
DEFAULT_TOPK_CACHE_ENTRIES = 4096


class WorkerError(RuntimeError):
    """A worker process reported a failure instead of a result."""


class DeadlineExpired(WorkerError):
    """The request's deadline budget was spent before it could be answered.

    Raised by the pool when a task's budget is already spent at submit
    time, and when a worker dequeues a task whose budget ran out while it
    sat in the queue (both count ``rwr.serve.deadline_expired``).
    Subclasses :class:`WorkerError` so existing error handling — the
    ``PoolServer`` error reply, CLI exit paths — keeps working, while the
    gateway can tell the two apart and degrade instead of failing.
    """


class TopKCache:
    """A small LRU cache of top-k replies, keyed by artifact generation.

    Keys are ``(generation, seed, k, exclude_seed)`` tuples: because the
    artifact directories are immutable and the query phase deterministic,
    a cached answer for a generation is valid for as long as that
    generation exists — no TTL, no explicit invalidation.  When the
    :class:`~repro.store.ArtifactStore` ``current`` pointer swaps, new
    queries carry the new generation in their key, so every stale entry
    simply stops being reachable and ages out of the LRU.

    Hits, misses and evictions are counted into the owning registry
    (``rwr.topk.cache.{hits,misses,evictions}``); ``max_entries=0``
    disables caching entirely.

    The cache is thread-safe: ``get``/``put``/``stats`` hold an internal
    lock, because under the async gateway the pool is reached from
    executor threads concurrently with stats readers — an unlocked
    ``OrderedDict.move_to_end`` racing a ``popitem`` corrupts the LRU
    order (or raises ``KeyError``) in ways a single synchronous caller
    never sees.
    """

    def __init__(self, max_entries: int = DEFAULT_TOPK_CACHE_ENTRIES,
                 registry: Optional[MetricsRegistry] = None):
        if max_entries < 0:
            raise InvalidParameterError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, TopKResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        # Pre-register so an all-miss (or never-queried) cache still
        # exports zeros instead of absent series.
        self._hits = self._registry.counter(
            telemetry.TOPK_CACHE_HITS, help="top-k queries answered from cache"
        )
        self._misses = self._registry.counter(
            telemetry.TOPK_CACHE_MISSES, help="top-k queries needing a solve"
        )
        self._evictions = self._registry.counter(
            telemetry.TOPK_CACHE_EVICTIONS, help="top-k cache entries evicted (LRU)"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[TopKResult]:
        """The cached answer for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: Hashable, value: TopKResult) -> None:
        """Insert an answer, evicting least-recently-used entries beyond
        capacity."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def stats(self) -> Dict[str, float]:
        """Current counter values plus occupancy (for ``pool_stats``)."""
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "hits": self._hits.value,
                "misses": self._misses.value,
                "evictions": self._evictions.value,
            }


def _command_seed_count(command: tuple) -> int:
    """How many seeds a worker command carries (0 for control commands)."""
    if command[0] == "query_many":
        return len(command[1])
    if command[0] == "query_topk":
        return len(command[1][0])
    return 0


def _single_caller(method):
    """Serialize a :class:`WorkerPool` worker round-trip under the pool's
    caller lock.  Dispatch + supervised collection assume exclusive use of
    the shared result queue; without the lock, two concurrent callers each
    consume (and drop) the other's replies and both time out."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._caller_lock:
            return method(self, *args, **kwargs)

    return wrapper


def _trace_task_payload(trace: Sequence[Tuple[int, int]]) -> tuple:
    """The trailing trace element of a traced task tuple: the dispatch
    wall-clock timestamp (for the worker's queue-wait span — perf counters
    are not comparable across processes) plus the origin contexts."""
    return (time.time(), tuple((int(t), int(s)) for t, s in trace))


def _task_deadline(message: tuple) -> Optional[float]:
    """The optional wall-clock deadline element of a task tuple.

    Task tuples are ``(op, wire_id, payload[, trace][, deadline])``; the
    deadline is an absolute ``time.time()`` instant (monotonic readings
    are not comparable across processes, mirroring the trace payload's
    dispatch timestamp).
    """
    if len(message) > 4 and message[4] is not None:
        return float(message[4])
    return None


def engine_for_bundle(bundle: SolverArtifacts) -> QueryEngine:
    """The query engine class matching a bundle's ``kind``."""
    if bundle.kind == "bepi":
        return BePIQueryEngine(bundle)
    if bundle.kind == "bear":
        return BearQueryEngine(bundle)
    raise InvalidParameterError(f"no query engine for artifact kind {bundle.kind!r}")


def resolve_artifact_path(path: PathLike) -> Path:
    """Resolve ``path`` to a concrete artifact directory.

    Accepts an artifact directory itself, or an
    :class:`~repro.store.ArtifactStore` root (resolved through its
    ``current`` pointer, so re-resolving after a publish picks up the new
    generation).
    """
    p = Path(path)
    if (p / "manifest.json").is_file():
        return p
    if (p / "generations").is_dir():
        current = ArtifactStore(p).current_path()
        if current is None:
            raise GraphFormatError(f"{path}: store has no published generation")
        return current
    raise GraphFormatError(f"{path}: neither an artifact directory nor a store root")


def open_query_engine(
    path: PathLike, mmap: bool = True, verify: bool = True
) -> QueryEngine:
    """Open an artifact directory (or store root) as a stateless query engine.

    This is what a serving worker calls: no solver object, no
    re-preprocessing — just the Algorithm 4 executor over memory-mapped
    matrices.  When ``path`` is a store root, opening goes through
    :meth:`~repro.store.ArtifactStore.open_current`, so a generation whose
    checksums fail is quarantined and the last good generation is served
    instead; a bare artifact directory has nothing to roll back to, so
    corruption there surfaces as
    :class:`~repro.exceptions.ArtifactIntegrityError`.
    """
    p = Path(path)
    if not (p / "manifest.json").is_file() and (p / "generations").is_dir():
        bundle = ArtifactStore(p).open_current(mmap=mmap, verify=verify)
    else:
        bundle = load_artifacts(resolve_artifact_path(p), mmap=mmap, verify=verify)
    return engine_for_bundle(bundle)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@contextmanager
def _worker_trace(registry: MetricsRegistry, trace_payload):
    """Trace scope for one worker query batch.

    ``trace_payload`` is the optional trailing element of a traced task
    tuple: ``(dispatch_wall_time, ((trace_id, span_id), ...))`` — one
    context per traced origin request.  Yields ``None`` untraced, else a
    capture list that ends up holding every span record the batch emits
    (the ambient contexts make :meth:`MetricsRegistry.span` — and with it
    the engine's Algorithm-4 phase spans — trace children automatically).

    The pool queue wait is measured against the dispatch *wall-clock*
    timestamp: ``perf_counter`` readings are not comparable across
    processes, so this one span uses ``time.time()`` with the duration
    clamped at zero against clock steps.
    """
    if not trace_payload:
        yield None
        return
    dispatched_at, ctx_pairs = trace_payload
    contexts = tuple(
        tracing.TraceContext(int(t), int(s)) for t, s in ctx_pairs
    )
    with tracing.capture() as records:
        now = time.time()
        wait = max(0.0, now - float(dispatched_at))
        registry.histogram(
            "serve.queue_wait.seconds", help="pool task-queue wait per batch"
        ).observe(wait, exemplar=tracing.format_id(contexts[0].trace_id))
        for ctx in contexts:
            records.append(
                tracing.make_record(
                    "serve.queue_wait",
                    trace_id=ctx.trace_id,
                    span_id=tracing.mint_id(),
                    parent_id=ctx.span_id,
                    start_time=float(dispatched_at),
                    duration=wait,
                )
            )
        with tracing.activate(contexts):
            yield records


def _worker_main(worker_id, path, mmap, task_queue, result_queue, fault_plan=None):
    """Worker loop: open the artifact directory, then answer until ``stop``.

    Replies on the shared result queue as ``(kind, worker_id, request_id,
    payload)`` tuples; the load-time RSS delta in the ready message is what
    the serving benchmark reports (for mmap workers it stays far below the
    artifact size — the pages are shared, not copied).

    ``fault_plan`` is an optional :class:`repro.faults.FaultPlan` as a dict
    (dataclasses do not cross the ``spawn`` boundary cheaply); when present
    the worker installs it and honours its crash/hang/delay/stagnation
    directives, which is how the chaos tests produce reproducible failures.
    """
    if fault_plan:
        faults.install(FaultPlan.from_dict(fault_plan))
    if faults.hang_for(worker_id):
        # Simulate a wedged worker: SIGTERM is ignored, so only the pool's
        # terminate -> kill escalation can reap this process.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    registry = MetricsRegistry()
    rss_before = process_rss_bytes()
    start = time.perf_counter()
    try:
        engine = open_query_engine(path, mmap=mmap)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put(("error", worker_id, "ready", f"{type(exc).__name__}: {exc}"))
        return
    load_seconds = time.perf_counter() - start
    rss_after = process_rss_bytes()
    rss_delta = (
        rss_after - rss_before if rss_before is not None and rss_after is not None else None
    )
    registry.gauge("serve.load.seconds", help="artifact open time").set(load_seconds)
    result_queue.put(
        (
            "ready",
            worker_id,
            "ready",
            {
                "worker_id": worker_id,
                "pid": os.getpid(),
                "n_nodes": engine.n_nodes,
                "load_seconds": load_seconds,
                "rss_before_load_bytes": rss_before,
                "rss_after_load_bytes": rss_after,
                "load_rss_delta_bytes": rss_delta,
            },
        )
    )
    started = time.perf_counter()
    batch_index = 0
    with registry.activate():
        while True:
            message = task_queue.get()
            command, request_id = message[0], message[1]
            if command == "stop":
                return
            trace_records: Optional[List[Dict[str, Any]]] = None
            try:
                if command in ("query_many", "query_topk"):
                    if command == "query_many":
                        seeds = message[2]
                    else:
                        seeds, top_k, exclude_seed = message[2]
                    trace_payload = message[3] if len(message) > 3 else None
                    deadline_wall = _task_deadline(message)
                    engine_deadline: Optional[float] = None
                    if deadline_wall is not None:
                        remaining = deadline_wall - time.time()
                        if remaining <= 0.0:
                            # The budget ran out while the task sat in the
                            # queue: drop it instead of burning a solve
                            # nobody is waiting for.
                            registry.counter(
                                telemetry.DEADLINE_EXPIRED,
                                help="tasks dropped with a spent deadline budget",
                            ).inc()
                            result_queue.put(
                                (
                                    "expired",
                                    worker_id,
                                    request_id,
                                    "deadline spent {:.1f} ms before the solve "
                                    "started".format(-remaining * 1000.0),
                                )
                            )
                            continue
                        engine_deadline = time.monotonic() + remaining
                    registry.counter("serve.requests", help="query batches served").inc()
                    registry.histogram(
                        "serve.batch.size",
                        buckets=telemetry.BATCH_SIZE_BUCKETS,
                        help="seeds per served batch",
                    ).observe(len(seeds))
                    with _worker_trace(registry, trace_payload) as trace_records:
                        with registry.span("serve.batch"):
                            if command == "query_many":
                                payload: Any = engine.query_many(
                                    seeds, deadline=engine_deadline
                                )
                            else:
                                # The payload shrink of the top-k path: k
                                # packed (int64, float64) pairs per seed
                                # cross the wire instead of an n-float
                                # dense row.
                                payload = [
                                    to_pairs(result)
                                    for result in engine.query_topk_many(
                                        seeds,
                                        top_k,
                                        exclude_seed=exclude_seed,
                                        deadline=engine_deadline,
                                    )
                                ]
                    # Injection window: the answer is computed but not yet
                    # sent — exactly where an OOM kill loses the most work.
                    delay = faults.delay_for(worker_id, batch_index)
                    crash = faults.crash_for(worker_id, batch_index)
                    batch_index += 1
                    if delay > 0.0:
                        time.sleep(delay)
                    if crash is not None:
                        os._exit(crash.exitcode)
                elif command == "reopen":
                    # The artifact store published a new generation: re-run
                    # the open so subsequent queries serve it.  mmap makes
                    # this near-free (nothing is read until touched).
                    engine = open_query_engine(path, mmap=mmap)
                    payload = {"n_nodes": engine.n_nodes, "pid": os.getpid()}
                elif command == "rss":
                    payload = process_rss_bytes()
                elif command == "metrics":
                    registry.gauge(
                        "serve.uptime.seconds", help="worker loop uptime"
                    ).set(time.perf_counter() - started)
                    rss_now = process_rss_bytes()
                    if rss_now is not None:
                        registry.gauge("serve.rss.bytes", help="worker RSS").set(rss_now)
                    payload = registry.snapshot()
                else:
                    raise ValueError(f"unknown worker command {command!r}")
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                result_queue.put(
                    ("error", worker_id, request_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                if trace_records:
                    # Traced query: ship the worker-side span records back
                    # across the spawn boundary in the reply tuple.
                    result_queue.put(
                        ("result", worker_id, request_id, payload, trace_records)
                    )
                else:
                    result_queue.put(("result", worker_id, request_id, payload))


class WorkerPool:
    """A supervised set of query-serving worker processes over one artifact path.

    Parameters
    ----------
    path:
        Artifact directory or store root; every worker opens it
        independently (see :func:`open_query_engine`).
    n_workers:
        Number of worker processes.
    mmap:
        Open the arrays memory-mapped (the point of the exercise); pass
        ``False`` only to measure what private copies would cost.
    start_method:
        ``multiprocessing`` start method.  The default ``"spawn"`` gives
        every worker a cold interpreter, so its RSS numbers measure the
        artifact-loading cost alone rather than pages inherited from the
        parent.
    metrics_path:
        Optional path of a JSON metrics snapshot the pool keeps fresh: the
        merged worker metrics are rewritten there after every query batch
        and at shutdown, which is the file ``repro-cli metrics`` reads.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` shipped to every worker
        (chaos testing); respawned workers get the plan narrowed by
        :meth:`~repro.faults.FaultPlan.without_worker` so one-shot crash
        directives do not loop.
    max_respawns:
        Respawns allowed per worker slot before it is taken out of
        rotation permanently.
    max_retries:
        Dispatch attempts per request (first try included) before the
        caller sees a :class:`WorkerError`.
    respawn_backoff:
        First respawn delay in seconds; doubles per respawn of the same
        slot (capped at :data:`MAX_RESPAWN_BACKOFF`).
    stop_timeout:
        Seconds :meth:`stop` waits at each escalation step
        (cooperative stop → SIGTERM → SIGKILL).
    topk_cache_entries:
        Capacity of the generation-keyed :class:`TopKCache` fronting
        :meth:`query_topk` / :meth:`query_topk_many` / :meth:`scatter_topk`
        (0 disables caching).

    Top-k serving
    -------------
    The top-k methods answer "the ``k`` best nodes for this seed" with
    k-pair wire replies (``k`` packed ``(int64 id, float64 score)`` pairs
    instead of ``n`` float64 scores) and are fronted by an LRU result
    cache keyed on ``(artifact generation, seed, k, exclude_seed)``.
    When the pool serves an :class:`~repro.store.ArtifactStore` root, each
    top-k call re-resolves the store's ``current`` pointer: a published
    generation swap makes the workers re-open the artifacts (cheap — the
    new arrays are memory-mapped, nothing is read until touched) and
    retires every stale cache entry automatically, because old entries
    are keyed under the old generation and can never match again.

    Supervision
    -----------
    The pool polls worker liveness while waiting for replies.  A worker
    found dead (OOM kill, segfault, injected crash) is respawned with
    exponential backoff, and its in-flight requests are re-dispatched to
    healthy workers — at most ``max_retries`` attempts each.  Because the
    artifacts are immutable and the query phase is deterministic, a retried
    request returns bit-identical scores; callers never observe the crash
    beyond added latency.  Restart counts are exported as
    ``rwr.serve.worker_restarts`` / ``rwr.serve.request_retries`` and in
    :meth:`pool_stats`.

    Examples
    --------
    ::

        with WorkerPool(artifact_dir, n_workers=2) as pool:
            scores = pool.query_many([0, 1, 2])          # one worker
            parts = pool.scatter(range(100))             # all workers
    """

    def __init__(
        self,
        path: PathLike,
        n_workers: int = 2,
        mmap: bool = True,
        start_method: str = "spawn",
        timeout: float = DEFAULT_TIMEOUT,
        metrics_path: Optional[PathLike] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        respawn_backoff: float = DEFAULT_RESPAWN_BACKOFF,
        stop_timeout: float = 10.0,
        topk_cache_entries: int = DEFAULT_TOPK_CACHE_ENTRIES,
    ):
        if n_workers < 1:
            raise InvalidParameterError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 1:
            raise InvalidParameterError(f"max_retries must be >= 1, got {max_retries}")
        self.path = Path(path)
        self.n_workers = n_workers
        self.timeout = timeout
        self.max_respawns = max_respawns
        self.max_retries = max_retries
        self.respawn_backoff = respawn_backoff
        self.stop_timeout = stop_timeout
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self._clean_orphan_metrics()
        self._started = time.perf_counter()
        self._worker_queries = [0] * n_workers
        # Guards _worker_queries: the counts are read by routing decisions
        # and pool_stats() while gateway executor threads submit work.
        self._queries_lock = threading.Lock()
        # Serializes worker round-trips (dispatch + supervised collection):
        # _collect assumes exclusive use of the shared result queue, so
        # concurrent callers — two PoolServers over one pool, or a fleet
        # metrics poll racing a query — must take turns or each would
        # consume and drop the other's replies.  Reentrant because e.g.
        # query_many -> _ensure_current_generation both take it.
        self._caller_lock = threading.RLock()
        self._mmap = mmap
        self._ctx = mp.get_context(start_method)
        self._result_queue = self._ctx.Queue()
        self._task_queues: List[Any] = []
        self._processes: List[Any] = []
        self._worker_plans: List[Optional[FaultPlan]] = [fault_plan] * n_workers
        self._request_counter = 0
        self._closed = False
        # Supervision state: wire-id -> in-flight record, caller-abandoned
        # origins, permanently failed origins, restart bookkeeping.
        self._inflight: Dict[int, Dict[str, Any]] = {}
        self._cancelled: set = set()
        self._failed: Dict[int, str] = {}
        self._respawns = [0] * n_workers
        self._disabled = [False] * n_workers
        self._restart_log: List[Dict[str, Any]] = []
        self._force_killed: List[int] = []
        self._registry = MetricsRegistry()
        # Pre-register so the supervision counters export as 0 rather than
        # being absent from snapshots of an incident-free pool.
        self._registry.counter(
            telemetry.WORKER_RESTARTS, help="worker processes respawned"
        )
        self._registry.counter(
            telemetry.REQUEST_RETRIES,
            help="requests re-dispatched after a worker death",
        )
        self._registry.counter(
            telemetry.WORKER_REROUTES,
            help="pinned requests rerouted off a disabled worker slot",
        )
        self._registry.counter(
            telemetry.DEADLINE_EXPIRED,
            help="tasks dropped with a spent deadline budget",
        )
        # Top-k result cache, keyed by the artifact generation the workers
        # serve.  A bare artifact directory is its own (only) generation;
        # a store root re-resolves its current pointer per top-k call.
        self._is_store = (
            not (self.path / "manifest.json").is_file()
            and (self.path / "generations").is_dir()
        )
        try:
            self._generation: Optional[str] = str(resolve_artifact_path(self.path))
        except GraphFormatError:
            # Unpublished/unresolvable path: let the workers surface the
            # real startup error below instead of masking it here.
            self._generation = None
        # When serving a store, pin the generation the workers have open
        # with a liveness-scoped lease so ArtifactStore.prune cannot delete
        # the directory behind their memory maps; the lease moves with
        # every hot swap and is released on stop.
        self._generation_lease = None
        if self._is_store:
            from repro.store import ArtifactStore

            self._store: Optional["ArtifactStore"] = ArtifactStore(self.path)
            self._move_generation_lease(self._generation)
        else:
            self._store = None
        self._topk_cache = TopKCache(topk_cache_entries, registry=self._registry)
        for worker_id in range(n_workers):
            task_queue = self._ctx.Queue()
            process = self._spawn_process(worker_id, task_queue, fault_plan)
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._stats: List[Dict[str, Any]] = [{} for _ in range(n_workers)]
        try:
            pending = set(range(n_workers))
            while pending:
                kind, worker_id, _, payload = self._result_queue.get(timeout=timeout)
                if kind == "error":
                    raise WorkerError(f"worker {worker_id} failed to start: {payload}")
                self._stats[worker_id] = payload
                pending.discard(worker_id)
        except BaseException:
            self._terminate()
            raise

    def _spawn_process(self, worker_id, task_queue, fault_plan):
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                str(self.path),
                self._mmap,
                task_queue,
                self._result_queue,
                fault_plan.to_dict() if fault_plan is not None else None,
            ),
            daemon=True,
        )
        process.start()
        return process

    def _admit_deadline(self, deadline_ms: Optional[float]) -> Optional[float]:
        """Convert a remaining-budget ``deadline_ms`` to an absolute
        wall-clock deadline, dropping already-expired requests up front."""
        if deadline_ms is None:
            return None
        if deadline_ms <= 0.0:
            self._registry.counter(
                telemetry.DEADLINE_EXPIRED,
                help="tasks dropped with a spent deadline budget",
            ).inc()
            raise DeadlineExpired(
                "request budget spent before dispatch "
                f"({deadline_ms:.1f} ms remaining)"
            )
        return time.time() + deadline_ms / 1000.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @_single_caller
    def query_many(
        self,
        seeds: Sequence[int],
        worker: Optional[int] = None,
        trace: Optional[Sequence[Tuple[int, int]]] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """``(k, n)`` RWR scores for ``seeds``, answered by one worker.

        By default the request goes to the **least-loaded** live worker
        (shallowest task queue, ties broken by fewest seeds submitted),
        so repeated calls spread across the pool instead of hot-spotting
        slot 0 while the rest idle.  Pass an explicit ``worker`` to pin
        the request (tests, determinism drills); a pinned worker whose
        slot has been taken out of rotation by the supervisor is rerouted
        to the least-loaded healthy one.

        ``trace`` optionally carries ``(trace_id, span_id)`` contexts —
        one per traced origin request — across the spawn boundary; the
        worker's span records come back with the reply and land in this
        process's :func:`repro.tracing.get_tracer` ring.

        ``deadline_ms`` is the request's remaining budget.  A spent budget
        raises :class:`DeadlineExpired` before dispatch; otherwise the
        deadline rides along in the task tuple and the worker drops the
        batch (or hands the engine a best-effort solve budget) based on
        how much remains when it dequeues.
        """
        deadline_wall = self._admit_deadline(deadline_ms)
        self._ensure_current_generation()
        worker = self._route_worker(worker)
        request_id = self._submit(
            worker, seeds, trace=trace, deadline_wall=deadline_wall
        )
        result = self._collect({request_id})[request_id]
        self._maybe_write_metrics()
        return result

    @_single_caller
    def query_many_each(self, seeds: Sequence[int]) -> List[np.ndarray]:
        """Have every healthy worker answer the same batch; returns one
        ``(k, n)`` matrix per worker (the cross-process determinism check)."""
        self._ensure_current_generation()
        requests = {self._submit(w, seeds): w for w in self._require_healthy()}
        results = self._collect(set(requests))
        self._maybe_write_metrics()
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    @_single_caller
    def scatter(self, seeds: Sequence[int]) -> np.ndarray:
        """Split a batch across the healthy workers; rows come back in seed
        order (bit-identical even if a worker dies and its share is retried
        elsewhere — the artifacts are immutable)."""
        self._ensure_current_generation()
        seed_list = list(seeds)
        workers = self._require_healthy()
        chunks = [c for c in np.array_split(np.arange(len(seed_list)), len(workers))]
        requests = {}
        for worker, chunk in zip(workers, chunks):
            if chunk.size:
                requests[self._submit(worker, [seed_list[i] for i in chunk])] = chunk
        results = self._collect(set(requests))
        n = next(iter(results.values())).shape[1] if results else 0
        scores = np.empty((len(seed_list), n), dtype=np.float64)
        for request_id, chunk in requests.items():
            scores[chunk] = results[request_id]
        self._maybe_write_metrics()
        return scores

    # ------------------------------------------------------------------
    # Top-k queries (k-pair wire replies + generation-keyed cache)
    # ------------------------------------------------------------------
    def query_topk(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        worker: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> TopKResult:
        """Exact top-``k`` ``(id, score)`` pairs for one seed.

        Bit-identical (ids and scores) to ``query_many([seed])`` followed
        by the deterministic lexicographic sort, but the reply crossing
        the process boundary is ``k`` 16-byte pairs instead of ``n``
        floats, and repeats of a hot seed are answered straight from the
        generation-keyed cache without any engine solve.
        """
        return self.query_topk_many(
            [seed], k, exclude_seed=exclude_seed, worker=worker,
            deadline_ms=deadline_ms,
        )[0]

    @_single_caller
    def query_topk_many(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool = True,
        worker: Optional[int] = None,
        trace: Optional[Sequence[Tuple[int, int]]] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[TopKResult]:
        """Top-``k`` answers for a batch of seeds from one worker.

        Cached seeds are answered locally; only the misses are shipped to
        a worker (least-loaded by default, or pinned via ``worker``).
        ``trace`` carries trace contexts to the worker exactly as in
        :meth:`query_many` (cache hits never reach a worker, so a fully
        cached batch contributes no worker-side spans).
        """
        k = validate_k(k)
        seed_list = [int(s) for s in seeds]
        generation = self._ensure_current_generation()
        answers: Dict[int, TopKResult] = {}
        misses: List[int] = []
        for index, seed in enumerate(seed_list):
            cached = self._cache_get(generation, seed, k, exclude_seed)
            if cached is not None:
                answers[index] = cached
            else:
                misses.append(index)
        if misses:
            # Cache hits are free: only a dispatch to a worker spends the
            # budget, so a fully cached batch is served even at zero.
            deadline_wall = self._admit_deadline(deadline_ms)
            target = self._route_worker(worker)
            request_id = self._submit_topk(
                target, [seed_list[i] for i in misses], k, exclude_seed,
                trace=trace, deadline_wall=deadline_wall,
            )
            replies = self._collect({request_id})[request_id]
            self._absorb_topk_replies(
                generation, k, exclude_seed,
                [(i, seed_list[i]) for i in misses], replies, answers,
            )
        self._maybe_write_metrics()
        return [answers[index] for index in range(len(seed_list))]

    @_single_caller
    def scatter_topk(
        self,
        seeds: Sequence[int],
        k: int,
        exclude_seed: bool = True,
    ) -> List[TopKResult]:
        """Top-``k`` answers for a batch, cache first, misses split across
        all healthy workers; results come back in seed order (bit-identical
        even through a worker death — the artifacts are immutable)."""
        k = validate_k(k)
        seed_list = [int(s) for s in seeds]
        generation = self._ensure_current_generation()
        answers: Dict[int, TopKResult] = {}
        misses: List[int] = []
        for index, seed in enumerate(seed_list):
            cached = self._cache_get(generation, seed, k, exclude_seed)
            if cached is not None:
                answers[index] = cached
            else:
                misses.append(index)
        if misses:
            workers = self._require_healthy()
            chunks = np.array_split(np.asarray(misses, dtype=np.int64), len(workers))
            requests = {}
            for target, chunk in zip(workers, chunks):
                if chunk.size:
                    requests[self._submit_topk(
                        target, [seed_list[i] for i in chunk], k, exclude_seed
                    )] = chunk
            results = self._collect(set(requests))
            for request_id, chunk in requests.items():
                self._absorb_topk_replies(
                    generation, k, exclude_seed,
                    [(int(i), seed_list[int(i)]) for i in chunk],
                    results[request_id], answers,
                )
        self._maybe_write_metrics()
        return [answers[index] for index in range(len(seed_list))]

    def topk_cache_stats(self) -> Dict[str, float]:
        """Occupancy and hit/miss/eviction counters of the top-k cache."""
        return self._topk_cache.stats()

    @_single_caller
    def rss_bytes(self) -> List[int]:
        """Current resident set size of every healthy worker, in bytes."""
        requests = {self._dispatch(w, ("rss",)): w for w in self._require_healthy()}
        results = self._collect(set(requests))
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-worker load statistics reported at startup."""
        return [dict(stats) for stats in self._stats]

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @_single_caller
    def worker_metrics(self) -> List[Dict[str, Any]]:
        """One metrics snapshot per healthy worker (see :mod:`repro.telemetry`)."""
        requests = {self._dispatch(w, ("metrics",)): w for w in self._require_healthy()}
        results = self._collect(set(requests))
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    def metrics(self) -> MetricsRegistry:
        """Merged metrics across every worker plus the pool's own counters.

        Counters and gauges sum, histograms merge bucket-wise, so the pool
        totals (``rwr.queries``, ``rwr.queries.unconverged``, latency
        distributions) match what a single-process run of the same batches
        would have recorded.  Supervision counters
        (``rwr.serve.worker_restarts``, ``rwr.serve.request_retries``) are
        recorded pool-side and merged in.
        """
        return telemetry.merge_snapshots(
            self.worker_metrics() + [self._registry.snapshot()]
        )

    def pool_stats(self) -> Dict[str, Any]:
        """Pool-level serving statistics (queue depth, per-worker throughput,
        supervision: respawns, retries, disabled slots, force-kills)."""
        uptime = time.perf_counter() - self._started
        depths = []
        for task_queue in self._task_queues:
            try:
                depths.append(int(task_queue.qsize()))
            except NotImplementedError:  # pragma: no cover - macOS queues
                depths.append(None)
        known = [d for d in depths if d is not None]
        workers = []
        with self._queries_lock:
            worker_queries = list(self._worker_queries)
        for worker_id, submitted in enumerate(worker_queries):
            process = self._processes[worker_id]
            workers.append(
                {
                    "worker_id": worker_id,
                    "queries_submitted": submitted,
                    "queries_per_second": submitted / uptime if uptime > 0 else 0.0,
                    "queue_depth": depths[worker_id],
                    "respawns": self._respawns[worker_id],
                    "disabled": self._disabled[worker_id],
                    "alive": bool(process is not None and process.is_alive()),
                }
            )
        return {
            "n_workers": self.n_workers,
            "uptime_seconds": uptime,
            "queue_depth": sum(known) if known else None,
            "queries_submitted": sum(worker_queries),
            "worker_restarts": sum(self._respawns),
            "requests_retried": int(
                self._registry.counter(telemetry.REQUEST_RETRIES).value
            ),
            "restarts": [dict(event) for event in self._restart_log],
            "force_killed": list(self._force_killed),
            "generation": self._generation,
            "topk_cache": self._topk_cache.stats(),
            "workers": workers,
        }

    def write_metrics(self, path: Optional[PathLike] = None) -> Path:
        """Write the merged worker metrics as a JSON snapshot.

        ``path`` defaults to the pool's ``metrics_path``; parent
        directories are created as needed.  The snapshot is staged in a
        pid-tagged ``.tmp`` file and atomically renamed into place;
        orphaned ``.tmp`` files from a previous process that died
        mid-write are cleaned up when the next pool starts.
        """
        target = Path(path) if path is not None else self.metrics_path
        if target is None:
            raise InvalidParameterError(
                "no metrics path: pass one or construct the pool with metrics_path"
            )
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(self.metrics().to_json())
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        return target

    def _clean_orphan_metrics(self) -> None:
        """Remove stale ``.tmp`` staging files next to the metrics target."""
        if self.metrics_path is None or not self.metrics_path.parent.is_dir():
            return
        for orphan in self.metrics_path.parent.glob(self.metrics_path.name + ".*tmp"):
            try:
                orphan.unlink()
            except OSError:  # pragma: no cover - best effort
                pass

    def _maybe_write_metrics(self) -> None:
        if self.metrics_path is not None and not self._closed:
            self.write_metrics()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> List[int]:
        """Shut every worker down and reap the processes.

        Escalates per surviving process: cooperative ``stop`` message →
        ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL), waiting
        ``stop_timeout`` seconds at each step, so a wedged worker (stuck
        solve, ignored SIGTERM) cannot leave a zombie behind.  Returns the
        ids of workers that had to be force-killed (also recorded in
        :meth:`pool_stats` under ``"force_killed"``).
        """
        if self._closed:
            return list(self._force_killed)
        if self.metrics_path is not None:
            try:
                self.write_metrics()
            except (WorkerError, OSError):  # pragma: no cover - best effort
                pass
        self._closed = True
        if self._generation_lease is not None:
            self._generation_lease.release()
            self._generation_lease = None
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop", None))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            if process is not None:
                process.join(timeout=self.stop_timeout)
        self._terminate()
        return list(self._force_killed)

    def _terminate(self) -> None:
        """Escalate on still-running workers: SIGTERM, then SIGKILL."""
        survivors = [
            (worker_id, process)
            for worker_id, process in enumerate(self._processes)
            if process is not None and process.is_alive()
        ]
        for _, process in survivors:
            process.terminate()
        for _, process in survivors:
            process.join(timeout=self.stop_timeout)
        for worker_id, process in survivors:
            if process.is_alive():
                process.kill()
                process.join(timeout=self.stop_timeout)
                self._force_killed.append(worker_id)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Internals: dispatch
    # ------------------------------------------------------------------
    def _next_request_id(self) -> int:
        # Monotonic and never recycled: a late payload from a crashed or
        # abandoned request can never collide with a newer request's id.
        self._request_counter += 1
        return self._request_counter

    def _healthy_workers(self) -> List[int]:
        return [
            worker_id
            for worker_id in range(self.n_workers)
            if not self._disabled[worker_id]
            and self._processes[worker_id] is not None
        ]

    def _require_healthy(self) -> List[int]:
        workers = self._healthy_workers()
        if not workers:
            raise WorkerError(
                "no healthy workers left "
                f"(all {self.n_workers} slots exhausted their respawn budget)"
            )
        return workers

    def _route_worker(self, worker: Optional[int]) -> int:
        """Resolve a caller's worker choice: explicit pin or least-loaded.

        A pinned worker whose slot left rotation is rerouted through the
        same least-loaded selection as unpinned traffic — sending every
        orphaned pin to the lowest healthy slot would recreate exactly the
        hot-spotting the load-aware routing removed.  Reroutes are counted
        (``rwr.serve.worker_reroutes``) so a dashboard can tell pinned
        traffic is landing somewhere else than asked.
        """
        if worker is None:
            return self._least_loaded_worker()
        if not 0 <= worker < self.n_workers:
            raise InvalidParameterError(
                f"worker must be in [0, {self.n_workers}), got {worker}"
            )
        if self._disabled[worker]:
            self._registry.counter(
                telemetry.WORKER_REROUTES,
                help="pinned requests rerouted off a disabled worker slot",
            ).inc()
            return self._least_loaded_worker()
        return worker

    def _least_loaded_worker(self) -> int:
        """The healthy worker with the shallowest task queue.

        Ties (the common case in synchronous callers, where queues drain
        to zero between calls) break toward the fewest seeds submitted so
        far, then the lowest slot id — the same bookkeeping
        :meth:`pool_stats` reports, so routing is observable.
        """
        with self._queries_lock:
            worker_queries = list(self._worker_queries)

        def load(worker_id: int) -> Tuple[int, int, int]:
            try:
                depth = int(self._task_queues[worker_id].qsize())
            except NotImplementedError:  # pragma: no cover - macOS queues
                depth = 0
            return (depth, worker_queries[worker_id], worker_id)

        return min(self._require_healthy(), key=load)

    # ------------------------------------------------------------------
    # Internals: generation tracking + top-k plumbing
    # ------------------------------------------------------------------
    def _generation_token(self) -> Optional[str]:
        """The artifact generation the pool should be serving right now."""
        if not self._is_store:
            return self._generation
        try:
            return str(resolve_artifact_path(self.path))
        except GraphFormatError:
            return self._generation

    def refresh_generation(self) -> Optional[str]:
        """Follow the store's ``current`` pointer *now*; returns the name
        of the generation the pool is serving afterwards.

        Query paths already do this implicitly per call; this public hook
        exists for pollers (``repro serve --follow-store``) that want the
        workers swapped onto a freshly published generation even while no
        queries are flowing, and for callers that need the swap
        acknowledged before asserting on replies.  On a bare artifact
        directory it is a no-op returning the directory's resolved name.
        """
        token = self._ensure_current_generation()
        return Path(token).name if token is not None else None

    def _move_generation_lease(self, token: Optional[str]) -> None:
        """Re-pin the store lease onto the generation ``token`` resolves to."""
        if self._store is None or token is None:
            return
        old_lease = self._generation_lease
        try:
            self._generation_lease = self._store.acquire_lease(Path(token).name)
        except (GraphFormatError, OSError):  # pragma: no cover - races only
            self._generation_lease = None
        if old_lease is not None:
            old_lease.release()

    @_single_caller
    def _ensure_current_generation(self) -> Optional[str]:
        """Follow the store's ``current`` pointer before any query.

        When a new generation has been published since the workers opened
        their artifacts, every healthy worker re-opens (cheap: mmap) so
        replies match the generation the cache keys them under.  Entries
        keyed under the previous generation become unreachable and age
        out of the LRU — the automatic invalidation the cache relies on.

        Every query mode (dense ``query_many`` / ``query_many_each`` /
        ``scatter`` as well as the top-k paths) funnels through here, so
        after a publish the dense and top-k answers always come from the
        *same* generation — the store's ``current`` — rather than dense
        queries serving whatever the workers opened at spawn time.
        """
        token = self._generation_token()
        if token is not None and token != self._generation:
            requests = {
                self._dispatch(w, ("reopen",)): w for w in self._require_healthy()
            }
            results = self._collect(set(requests))
            for request_id, worker_id in requests.items():
                self._stats[worker_id].update(results[request_id])
            self._generation = token
            self._move_generation_lease(token)
        return self._generation

    def _cache_key(
        self, generation: Optional[str], seed: int, k: int, exclude_seed: bool
    ) -> Optional[Tuple]:
        if generation is None:
            return None
        return (generation, seed, k, bool(exclude_seed))

    def _cache_get(
        self, generation: Optional[str], seed: int, k: int, exclude_seed: bool
    ) -> Optional[TopKResult]:
        key = self._cache_key(generation, seed, k, exclude_seed)
        return self._topk_cache.get(key) if key is not None else None

    def _submit_topk(
        self,
        worker: int,
        seeds: List[int],
        k: int,
        exclude_seed: bool,
        trace: Optional[Sequence[Tuple[int, int]]] = None,
        deadline_wall: Optional[float] = None,
    ) -> int:
        command: tuple = ("query_topk", (seeds, k, exclude_seed))
        if trace or deadline_wall is not None:
            command += (_trace_task_payload(trace) if trace else None,)
        if deadline_wall is not None:
            command += (deadline_wall,)
        request_id = self._dispatch(worker, command)
        with self._queries_lock:
            self._worker_queries[worker] += len(seeds)
        return request_id

    def _absorb_topk_replies(
        self,
        generation: Optional[str],
        k: int,
        exclude_seed: bool,
        indexed_seeds: List[Tuple[int, int]],
        replies: List[np.ndarray],
        answers: Dict[int, TopKResult],
    ) -> None:
        """Unpack one worker's k-pair replies: fill ``answers``, populate
        the cache, and record the wire payload size."""
        reply_bytes = 0
        for (index, seed), packed in zip(indexed_seeds, replies):
            reply_bytes += int(packed.nbytes)
            result = from_pairs(packed)
            answers[index] = result
            key = self._cache_key(generation, seed, k, exclude_seed)
            if key is not None:
                self._topk_cache.put(key, result)
        self._registry.histogram(
            telemetry.TOPK_REPLY_BYTES,
            buckets=telemetry.PAYLOAD_BYTES_BUCKETS,
            help="bytes per top-k wire reply (k 16-byte pairs per seed)",
        ).observe(reply_bytes)

    def _dispatch(
        self,
        worker: int,
        command: tuple,
        origin: Optional[int] = None,
        attempts: int = 1,
    ) -> int:
        """Send ``command`` to ``worker``, tracking it for crash recovery.

        ``command`` is ``("query_many", seeds)``,
        ``("query_topk", (seeds, k, exclude_seed))``, ``("reopen",)``,
        ``("rss",)`` or ``("metrics",)``.  ``origin`` is the id the caller
        holds; the first dispatch uses the wire id itself, re-dispatches
        get a fresh wire id mapping back to the same origin.
        """
        if self._closed:
            raise WorkerError("pool is stopped")
        wire_id = self._next_request_id()
        if origin is None:
            origin = wire_id
        self._inflight[wire_id] = {
            "origin": origin,
            "worker": worker,
            "command": command,
            "attempts": attempts,
        }
        self._task_queues[worker].put((command[0], wire_id) + tuple(command[1:]))
        return wire_id

    def _submit(
        self,
        worker: int,
        seeds: Sequence[int],
        trace: Optional[Sequence[Tuple[int, int]]] = None,
        deadline_wall: Optional[float] = None,
    ) -> int:
        if not 0 <= worker < self.n_workers:
            raise InvalidParameterError(
                f"worker must be in [0, {self.n_workers}), got {worker}"
            )
        seed_list = list(seeds)
        command: tuple = ("query_many", seed_list)
        # The deadline is the task tuple's 5th element, so an untraced
        # deadline-carrying command pads the trace slot with None.
        if trace or deadline_wall is not None:
            command += (_trace_task_payload(trace) if trace else None,)
        if deadline_wall is not None:
            command += (deadline_wall,)
        request_id = self._dispatch(worker, command)
        with self._queries_lock:
            self._worker_queries[worker] += len(seed_list)
        return request_id

    # ------------------------------------------------------------------
    # Internals: supervised collection
    # ------------------------------------------------------------------
    def _collect(self, expected: set) -> Dict[int, Any]:
        """Wait for every ``expected`` origin id, supervising the workers.

        Instead of one blocking ``get`` per reply, the wait polls in
        :data:`POLL_INTERVAL` slices and checks worker liveness between
        slices: a dead worker is respawned and its in-flight requests are
        re-dispatched (:meth:`_reap_worker`).  On any raise — worker error,
        timeout, exhausted retries — every still-outstanding origin of this
        call is cancelled so its payload, should it ever arrive, is dropped
        instead of being delivered to a later call.
        """
        results: Dict[int, Any] = {}
        deadline = time.monotonic() + self.timeout
        try:
            while expected - set(results):
                self._check_workers()
                for origin in expected:
                    if origin in self._failed:
                        raise WorkerError(self._failed.pop(origin))
                try:
                    message = self._result_queue.get(timeout=POLL_INTERVAL)
                except queue.Empty:
                    if time.monotonic() >= deadline:
                        raise WorkerError(
                            f"timed out after {self.timeout}s waiting for "
                            f"{len(expected - set(results))} outstanding request(s)"
                        )
                    continue
                # Replies are 4-tuples; traced query replies carry the
                # worker's span records as a 5th element.
                kind, worker_id, request_id, payload = message[:4]
                if kind == "ready":
                    # A respawned worker finished opening the artifacts.
                    self._stats[worker_id] = payload
                    continue
                if request_id == "ready":
                    # A respawned worker failed to open the artifacts; the
                    # process is exiting and _check_workers will see it.
                    self._restart_log.append(
                        {"worker_id": worker_id, "event": "respawn_failed",
                         "error": str(payload)}
                    )
                    continue
                record = self._inflight.pop(request_id, None)
                if record is None or record["origin"] in self._cancelled:
                    continue  # stale: re-dispatched, resolved, or abandoned
                origin = record["origin"]
                if kind == "error":
                    raise WorkerError(f"worker {worker_id}: {payload}")
                if kind == "expired":
                    # The worker dropped the task on dequeue: its budget
                    # ran out in the queue (already counted worker-side).
                    raise DeadlineExpired(f"worker {worker_id}: {payload}")
                if len(message) > 4 and message[4]:
                    # Worker-side span records for a traced query: fold
                    # them into this process's tracer so a PoolServer (or
                    # an in-process caller) can assemble the full trace.
                    tracing.get_tracer().absorb(message[4])
                results[origin] = payload
        except BaseException:
            # Drain/cancel the rest of the batch: outstanding origins are
            # marked so late payloads are dropped, and their in-flight
            # records are forgotten so they are never re-dispatched.
            for origin in expected - set(results):
                self._cancelled.add(origin)
            for wire_id in [
                w for w, rec in self._inflight.items()
                if rec["origin"] in self._cancelled
            ]:
                del self._inflight[wire_id]
            raise
        return results

    def _check_workers(self) -> None:
        """Detect dead workers; respawn them and re-route their requests."""
        for worker_id in range(self.n_workers):
            process = self._processes[worker_id]
            if (
                process is None
                or self._disabled[worker_id]
                or process.is_alive()
            ):
                continue
            self._reap_worker(worker_id, process)

    def _reap_worker(self, worker_id: int, process) -> None:
        exitcode = process.exitcode
        self._restart_log.append(
            {
                "worker_id": worker_id,
                "event": "died",
                "exitcode": exitcode,
                "pid": process.pid,
            }
        )
        orphans = [
            wire_id
            for wire_id, record in self._inflight.items()
            if record["worker"] == worker_id
        ]
        if self._respawns[worker_id] < self.max_respawns:
            # Exponential backoff before the replacement: a crash loop
            # (bad artifacts, OOM pressure) must not busy-spin the host.
            backoff = min(
                self.respawn_backoff * (2 ** self._respawns[worker_id]),
                MAX_RESPAWN_BACKOFF,
            )
            time.sleep(backoff)
            self._respawns[worker_id] += 1
            plan = self._worker_plans[worker_id]
            if plan is not None:
                # The replacement must not replay its predecessor's crash.
                plan = plan.without_worker(worker_id)
                self._worker_plans[worker_id] = plan
            # Fresh task queue: messages queued to the dead worker must not
            # be double-served if they were already picked up pre-crash.
            task_queue = self._ctx.Queue()
            self._task_queues[worker_id] = task_queue
            self._processes[worker_id] = self._spawn_process(
                worker_id, task_queue, plan
            )
            self._registry.counter(
                telemetry.WORKER_RESTARTS, help="worker processes respawned"
            ).inc()
            self._restart_log.append(
                {"worker_id": worker_id, "event": "respawned",
                 "backoff_seconds": backoff}
            )
        else:
            self._disabled[worker_id] = True
            self._processes[worker_id] = None
            self._restart_log.append(
                {"worker_id": worker_id, "event": "disabled",
                 "respawns": self._respawns[worker_id]}
            )
        self._redispatch(worker_id, exitcode, orphans)

    def _redispatch(self, dead_worker: int, exitcode, orphans: List[int]) -> None:
        """Re-route a dead worker's in-flight requests to healthy workers.

        Artifacts are immutable and the query phase deterministic, so the
        retried result is bit-identical to what the dead worker would have
        returned.  A request that exhausts ``max_retries`` fails its origin
        with a :class:`WorkerError` naming the crash.

        The per-worker ``_worker_queries`` counts move with the work: the
        dead worker gives back the seeds it never answered and the retry
        target is charged for them, so the load-aware routing (and
        ``pool_stats``) keep reflecting where queries actually ran.
        """
        healthy = self._healthy_workers()
        for index, wire_id in enumerate(orphans):
            record = self._inflight.pop(wire_id, None)
            if record is None or record["origin"] in self._cancelled:
                continue
            seeds_moved = _command_seed_count(record["command"])
            if record["attempts"] >= self.max_retries or not healthy:
                with self._queries_lock:
                    self._worker_queries[dead_worker] -= seeds_moved
                self._failed[record["origin"]] = (
                    f"worker {dead_worker} died (exitcode {exitcode}) and "
                    f"request {record['origin']} exhausted its "
                    f"{self.max_retries} attempt(s)"
                    if healthy
                    else f"worker {dead_worker} died (exitcode {exitcode}) "
                    "with no healthy worker left to retry on"
                )
                continue
            target = healthy[index % len(healthy)]
            self._dispatch(
                target,
                record["command"],
                origin=record["origin"],
                attempts=record["attempts"] + 1,
            )
            with self._queries_lock:
                self._worker_queries[dead_worker] -= seeds_moved
                self._worker_queries[target] += seeds_moved
            self._registry.counter(
                telemetry.REQUEST_RETRIES,
                help="requests re-dispatched after a worker death",
            ).inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._closed else "running"
        return f"WorkerPool(path={str(self.path)!r}, n_workers={self.n_workers}, {state})"
