"""Multi-process query serving over memory-mapped artifact directories.

The payoff of the build/serve split: once preprocessing has been exported
with :func:`repro.persistence.save_artifacts`, any number of worker
processes can serve Algorithm 4 queries against the *same* on-disk bundle.
Each worker opens the directory with ``mmap_mode="r"``, so

- startup is near-instant (no decompression, nothing is read until the
  first query touches it),
- the matrices live in the OS page cache **once**, shared by every worker
  on the machine, instead of once per process as with the ``.npz`` format,
- the mappings are read-only, so no worker can corrupt another's state.

:func:`open_query_engine` is the single-process entry point (give it an
artifact directory, a store root, or a ``.npz`` archive);
:class:`WorkerPool` manages a set of worker processes answering
``query_many`` batches over task queues, and is what
``repro-cli serve`` and the serving benchmark build on.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.bench.memory import process_rss_bytes
from repro.core.engine import (
    BearQueryEngine,
    BePIQueryEngine,
    QueryEngine,
    SolverArtifacts,
)
from repro.exceptions import GraphFormatError, InvalidParameterError
from repro.persistence import PathLike, load_artifacts
from repro.store import ArtifactStore
from repro.telemetry import MetricsRegistry

#: Seconds a pool waits for a worker reply before giving up.
DEFAULT_TIMEOUT = 300.0


class WorkerError(RuntimeError):
    """A worker process reported a failure instead of a result."""


def engine_for_bundle(bundle: SolverArtifacts) -> QueryEngine:
    """The query engine class matching a bundle's ``kind``."""
    if bundle.kind == "bepi":
        return BePIQueryEngine(bundle)
    if bundle.kind == "bear":
        return BearQueryEngine(bundle)
    raise InvalidParameterError(f"no query engine for artifact kind {bundle.kind!r}")


def resolve_artifact_path(path: PathLike) -> Path:
    """Resolve ``path`` to a concrete artifact directory.

    Accepts an artifact directory itself, or an
    :class:`~repro.store.ArtifactStore` root (resolved through its
    ``current`` pointer, so re-resolving after a publish picks up the new
    generation).
    """
    p = Path(path)
    if (p / "manifest.json").is_file():
        return p
    if (p / "generations").is_dir():
        current = ArtifactStore(p).current_path()
        if current is None:
            raise GraphFormatError(f"{path}: store has no published generation")
        return current
    raise GraphFormatError(f"{path}: neither an artifact directory nor a store root")


def open_query_engine(path: PathLike, mmap: bool = True) -> QueryEngine:
    """Open an artifact directory (or store root) as a stateless query engine.

    This is what a serving worker calls: no solver object, no
    re-preprocessing — just the Algorithm 4 executor over memory-mapped
    matrices.
    """
    bundle = load_artifacts(resolve_artifact_path(path), mmap=mmap)
    return engine_for_bundle(bundle)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id, path, mmap, task_queue, result_queue):
    """Worker loop: open the artifact directory, then answer until ``stop``.

    Replies on the shared result queue as ``(kind, worker_id, request_id,
    payload)`` tuples; the load-time RSS delta in the ready message is what
    the serving benchmark reports (for mmap workers it stays far below the
    artifact size — the pages are shared, not copied).
    """
    registry = MetricsRegistry()
    rss_before = process_rss_bytes()
    start = time.perf_counter()
    try:
        engine = open_query_engine(path, mmap=mmap)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put(("error", worker_id, "ready", f"{type(exc).__name__}: {exc}"))
        return
    load_seconds = time.perf_counter() - start
    rss_after = process_rss_bytes()
    rss_delta = (
        rss_after - rss_before if rss_before is not None and rss_after is not None else None
    )
    registry.gauge("serve.load.seconds", help="artifact open time").set(load_seconds)
    result_queue.put(
        (
            "ready",
            worker_id,
            "ready",
            {
                "worker_id": worker_id,
                "pid": os.getpid(),
                "n_nodes": engine.n_nodes,
                "load_seconds": load_seconds,
                "rss_before_load_bytes": rss_before,
                "rss_after_load_bytes": rss_after,
                "load_rss_delta_bytes": rss_delta,
            },
        )
    )
    started = time.perf_counter()
    with registry.activate():
        while True:
            message = task_queue.get()
            command, request_id = message[0], message[1]
            if command == "stop":
                return
            try:
                if command == "query_many":
                    seeds = message[2]
                    registry.counter("serve.requests", help="query batches served").inc()
                    registry.histogram(
                        "serve.batch.size",
                        buckets=telemetry.BATCH_SIZE_BUCKETS,
                        help="seeds per served batch",
                    ).observe(len(seeds))
                    with registry.span("serve.batch"):
                        payload: Any = engine.query_many(seeds)
                elif command == "rss":
                    payload = process_rss_bytes()
                elif command == "metrics":
                    registry.gauge(
                        "serve.uptime.seconds", help="worker loop uptime"
                    ).set(time.perf_counter() - started)
                    rss_now = process_rss_bytes()
                    if rss_now is not None:
                        registry.gauge("serve.rss.bytes", help="worker RSS").set(rss_now)
                    payload = registry.snapshot()
                else:
                    raise ValueError(f"unknown worker command {command!r}")
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                result_queue.put(
                    ("error", worker_id, request_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                result_queue.put(("result", worker_id, request_id, payload))


class WorkerPool:
    """A fixed set of query-serving worker processes over one artifact path.

    Parameters
    ----------
    path:
        Artifact directory or store root; every worker opens it
        independently (see :func:`open_query_engine`).
    n_workers:
        Number of worker processes.
    mmap:
        Open the arrays memory-mapped (the point of the exercise); pass
        ``False`` only to measure what private copies would cost.
    start_method:
        ``multiprocessing`` start method.  The default ``"spawn"`` gives
        every worker a cold interpreter, so its RSS numbers measure the
        artifact-loading cost alone rather than pages inherited from the
        parent.
    metrics_path:
        Optional path of a JSON metrics snapshot the pool keeps fresh: the
        merged worker metrics are rewritten there after every query batch
        and at shutdown, which is the file ``repro-cli metrics`` reads.

    Examples
    --------
    ::

        with WorkerPool(artifact_dir, n_workers=2) as pool:
            scores = pool.query_many([0, 1, 2])          # one worker
            parts = pool.scatter(range(100))             # all workers
    """

    def __init__(
        self,
        path: PathLike,
        n_workers: int = 2,
        mmap: bool = True,
        start_method: str = "spawn",
        timeout: float = DEFAULT_TIMEOUT,
        metrics_path: Optional[PathLike] = None,
    ):
        if n_workers < 1:
            raise InvalidParameterError(f"n_workers must be >= 1, got {n_workers}")
        self.path = Path(path)
        self.n_workers = n_workers
        self.timeout = timeout
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self._started = time.perf_counter()
        self._worker_queries = [0] * n_workers
        ctx = mp.get_context(start_method)
        self._result_queue = ctx.Queue()
        self._task_queues = []
        self._processes = []
        self._request_counter = 0
        self._closed = False
        for worker_id in range(n_workers):
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(worker_id, str(path), mmap, task_queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._stats: List[Dict[str, Any]] = [{} for _ in range(n_workers)]
        try:
            pending = set(range(n_workers))
            while pending:
                kind, worker_id, _, payload = self._result_queue.get(timeout=timeout)
                if kind == "error":
                    raise WorkerError(f"worker {worker_id} failed to start: {payload}")
                self._stats[worker_id] = payload
                pending.discard(worker_id)
        except BaseException:
            self._terminate()
            raise

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_many(self, seeds: Sequence[int], worker: int = 0) -> np.ndarray:
        """``(k, n)`` RWR scores for ``seeds``, answered by one worker."""
        request_id = self._submit(worker, seeds)
        result = self._collect({request_id})[request_id]
        self._maybe_write_metrics()
        return result

    def query_many_each(self, seeds: Sequence[int]) -> List[np.ndarray]:
        """Have *every* worker answer the same batch; returns one ``(k, n)``
        matrix per worker (the cross-process determinism check)."""
        requests = {self._submit(w, seeds): w for w in range(self.n_workers)}
        results = self._collect(set(requests))
        self._maybe_write_metrics()
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    def scatter(self, seeds: Sequence[int]) -> np.ndarray:
        """Split a batch across all workers; rows come back in seed order."""
        seed_list = list(seeds)
        chunks = [c for c in np.array_split(np.arange(len(seed_list)), self.n_workers)]
        requests = {}
        for worker, chunk in enumerate(chunks):
            if chunk.size:
                requests[self._submit(worker, [seed_list[i] for i in chunk])] = chunk
        results = self._collect(set(requests))
        n = next(iter(results.values())).shape[1] if results else 0
        scores = np.empty((len(seed_list), n), dtype=np.float64)
        for request_id, chunk in requests.items():
            scores[chunk] = results[request_id]
        self._maybe_write_metrics()
        return scores

    def rss_bytes(self) -> List[int]:
        """Current resident set size of every worker, in bytes."""
        requests = {}
        for worker in range(self.n_workers):
            request_id = self._next_request_id()
            self._task_queues[worker].put(("rss", request_id))
            requests[request_id] = worker
        results = self._collect(set(requests))
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-worker load statistics reported at startup."""
        return [dict(stats) for stats in self._stats]

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def worker_metrics(self) -> List[Dict[str, Any]]:
        """One metrics snapshot per worker (see :mod:`repro.telemetry`)."""
        requests = {}
        for worker in range(self.n_workers):
            request_id = self._next_request_id()
            self._task_queues[worker].put(("metrics", request_id))
            requests[request_id] = worker
        results = self._collect(set(requests))
        return [results[rid] for rid in sorted(requests, key=requests.get)]

    def metrics(self) -> MetricsRegistry:
        """Merged metrics across every worker.

        Counters and gauges sum, histograms merge bucket-wise, so the pool
        totals (``rwr.queries``, ``rwr.queries.unconverged``, latency
        distributions) match what a single-process run of the same batches
        would have recorded.
        """
        return telemetry.merge_snapshots(self.worker_metrics())

    def pool_stats(self) -> Dict[str, Any]:
        """Pool-level serving statistics (queue depth, per-worker throughput)."""
        uptime = time.perf_counter() - self._started
        depths = []
        for task_queue in self._task_queues:
            try:
                depths.append(int(task_queue.qsize()))
            except NotImplementedError:  # pragma: no cover - macOS queues
                depths.append(None)
        known = [d for d in depths if d is not None]
        workers = []
        for worker_id, submitted in enumerate(self._worker_queries):
            workers.append(
                {
                    "worker_id": worker_id,
                    "queries_submitted": submitted,
                    "queries_per_second": submitted / uptime if uptime > 0 else 0.0,
                    "queue_depth": depths[worker_id],
                }
            )
        return {
            "n_workers": self.n_workers,
            "uptime_seconds": uptime,
            "queue_depth": sum(known) if known else None,
            "queries_submitted": sum(self._worker_queries),
            "workers": workers,
        }

    def write_metrics(self, path: Optional[PathLike] = None) -> Path:
        """Write the merged worker metrics as a JSON snapshot.

        ``path`` defaults to the pool's ``metrics_path``; parent
        directories are created as needed.
        """
        target = Path(path) if path is not None else self.metrics_path
        if target is None:
            raise InvalidParameterError(
                "no metrics path: pass one or construct the pool with metrics_path"
            )
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(self.metrics().to_json())
        os.replace(tmp, target)
        return target

    def _maybe_write_metrics(self) -> None:
        if self.metrics_path is not None and not self._closed:
            self.write_metrics()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Shut every worker down and reap the processes."""
        if self._closed:
            return
        if self.metrics_path is not None:
            try:
                self.write_metrics()
            except (WorkerError, OSError):  # pragma: no cover - best effort
                pass
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop", None))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=10)
        self._terminate()

    def _terminate(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _submit(self, worker: int, seeds: Sequence[int]) -> int:
        if self._closed:
            raise WorkerError("pool is stopped")
        if not 0 <= worker < self.n_workers:
            raise InvalidParameterError(
                f"worker must be in [0, {self.n_workers}), got {worker}"
            )
        request_id = self._next_request_id()
        seed_list = list(seeds)
        self._task_queues[worker].put(("query_many", request_id, seed_list))
        self._worker_queries[worker] += len(seed_list)
        return request_id

    def _collect(self, expected: set) -> Dict[int, Any]:
        results: Dict[int, Any] = {}
        while expected - set(results):
            kind, worker_id, request_id, payload = self._result_queue.get(
                timeout=self.timeout
            )
            if kind == "error":
                raise WorkerError(f"worker {worker_id}: {payload}")
            results[request_id] = payload
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._closed else "running"
        return f"WorkerPool(path={str(self.path)!r}, n_workers={self.n_workers}, {state})"
