"""The common interface of every RWR method in this package.

Both the paper's contribution (BePI) and all baselines (Bear, LU, GMRES,
power iteration, dense inverse) implement :class:`RWRSolver`, so the
benchmark harness and the applications can treat them interchangeably:

    solver = BePI(c=0.05)
    solver.preprocess(graph)
    scores = solver.query(seed)
    matrix = solver.query_many(seeds)   # one batched Algorithm-4 pass

Single queries go through :meth:`RWRSolver._query`; multi-seed queries go
through :meth:`RWRSolver._query_batch`, a multi-right-hand-side hook whose
base implementation loops ``_query`` and which solvers override with a
vectorized path (the bulk-serving pattern preprocessing methods exist for).
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import telemetry, tracing
from repro.bench.memory import MemoryBudget, matrix_memory_bytes
from repro.core.engine import validate_seed, validate_seeds
from repro.core.topk import TopKResult, topk_from_scores, validate_k
from repro.exceptions import (
    ConvergenceWarning,
    InvalidParameterError,
    NotPreprocessedError,
)
from repro.graph.graph import Graph
from repro.linalg.rwr_matrix import seed_vector
from repro.telemetry import MetricsRegistry, RegistryStats

#: ``stats`` keys that read through to registry counters (name mapping).
_STAT_COUNTERS = {
    "queries": telemetry.QUERIES_TOTAL,
    "unconverged_queries": telemetry.QUERIES_UNCONVERGED,
}


@dataclass
class QueryResult:
    """A scored query with solver-side metadata.

    Attributes
    ----------
    scores:
        RWR score vector in original node order.
    seconds:
        Wall-clock time of the query.
    iterations:
        Iterations the solver's inner iterative method used (0 for purely
        direct methods).
    extras:
        Solver-specific metadata.  Iterative solvers report ``"converged"``
        (bool) here; ``False`` means the returned scores missed the
        requested tolerance (a :class:`ConvergenceWarning` is emitted and
        ``solver.stats["unconverged_queries"]`` is incremented).
    """

    scores: np.ndarray
    seconds: float
    iterations: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BatchQueryResult:
    """A batch of scored queries answered through one multi-RHS solve.

    Attributes
    ----------
    scores:
        ``(k, n)`` matrix; row ``i`` holds the RWR scores of seed ``i`` in
        original node order.
    seconds:
        Wall-clock time of the whole batch.
    iterations:
        ``(k,)`` inner-iteration counts, one per seed (0 for direct
        methods).
    per_seed_seconds:
        ``(k,)`` per-seed wall-clock times.  Measured individually when the
        solver fell back to the looped path; amortized (``seconds / k``)
        when the batch was answered by one vectorized solve.
    extras:
        Solver-specific metadata.  Iterative solvers report ``"converged"``
        as a ``(k,)`` boolean array (per-seed convergence of the inner
        solve).
    """

    scores: np.ndarray
    seconds: float
    iterations: np.ndarray
    per_seed_seconds: np.ndarray
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return int(self.scores.shape[0])

    @property
    def all_converged(self) -> bool:
        """Whether every seed's inner solve converged (vacuously true for
        direct methods, which report no ``"converged"`` flags)."""
        flags = self.extras.get("converged")
        if flags is None:
            return True
        return bool(np.all(np.asarray(flags, dtype=bool)))


class RWRSolver(abc.ABC):
    """Abstract base class for Random Walk with Restart solvers.

    Parameters
    ----------
    c:
        Restart probability, strictly in ``(0, 1)``.  The paper uses 0.05.
    tol:
        Error tolerance of the inner iterative method (ignored by direct
        methods).  The paper uses 1e-9.
    memory_budget:
        Optional cap on preprocessed-data bytes; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError` during
        preprocessing, emulating the paper's out-of-memory failures.

    Subclass contract
    -----------------
    Implement :meth:`_preprocess` (store whatever the query phase needs and
    register retained matrices via :meth:`_retain`), and :meth:`_query`
    (given a starting vector in *original* node order, return scores in
    original order).  ``_query`` may return ``(scores, iterations)`` or
    ``(scores, iterations, extras)``; put a boolean ``"converged"`` in
    ``extras`` to opt into non-convergence accounting.  Optionally override
    :meth:`_query_batch` with a vectorized multi-seed path; the default
    loops ``_query`` per column.
    """

    #: Human-readable method name used by the benchmark harness.
    name: str = "rwr"

    def __init__(
        self,
        c: float = 0.05,
        tol: float = 1e-9,
        memory_budget: Optional[MemoryBudget] = None,
    ):
        if not 0.0 < c < 1.0:
            raise InvalidParameterError(f"restart probability c must be in (0, 1), got {c}")
        if tol <= 0.0:
            raise InvalidParameterError(f"tol must be positive, got {tol}")
        self.c = c
        self.tol = tol
        self.memory_budget = memory_budget if memory_budget is not None else MemoryBudget()
        self._graph: Optional[Graph] = None
        self._retained: Dict[str, Any] = {}
        #: Per-solver metrics registry: the source of truth behind ``stats``.
        #: It is activated (made ambient) around every query, so nested
        #: GMRES/engine instrumentation lands here without plumbing.
        self.telemetry = MetricsRegistry()
        self.stats: Dict[str, Any] = RegistryStats(self.telemetry, _STAT_COUNTERS)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_preprocessed(self) -> bool:
        return self._graph is not None

    @property
    def graph(self) -> Graph:
        """The preprocessed graph."""
        self._require_preprocessed()
        return self._graph  # type: ignore[return-value]

    def preprocess(self, graph: Graph) -> "RWRSolver":
        """Run the preprocessing phase on ``graph``.

        Returns ``self`` so construction and preprocessing chain:
        ``scores = BePI().preprocess(g).query(0)``.
        """
        self._retained = {}
        self.telemetry = MetricsRegistry(sampling=self.telemetry.sampling)
        self.stats = RegistryStats(self.telemetry, _STAT_COUNTERS)
        start = time.perf_counter()
        with self.telemetry.activate():
            self._preprocess(graph)
        elapsed = time.perf_counter() - start
        self._graph = graph
        self.stats["preprocess_seconds"] = elapsed
        self.stats["memory_bytes"] = self.memory_bytes()
        self.stats["queries"] = 0
        self.stats["unconverged_queries"] = 0
        self.telemetry.gauge("preprocess.seconds", help="preprocessing wall time").set(elapsed)
        self.telemetry.gauge(
            "memory.bytes", help="bytes of preprocessed data (Table 5)"
        ).set(self.stats["memory_bytes"])
        for stage, seconds in (self.stats.get("stage_timings") or {}).items():
            self.telemetry.gauge(
                f"preprocess.stage.{stage}.seconds", help=f"preprocessing stage: {stage}"
            ).set(seconds)
        self.memory_budget.check(self.stats["memory_bytes"], what=f"{self.name} preprocessed data")
        return self

    def query(self, seed: int) -> np.ndarray:
        """RWR scores of every node with respect to ``seed`` (original ids)."""
        return self.query_detailed(seed).scores

    def query_detailed(self, seed: int) -> QueryResult:
        """Like :meth:`query` but returns timing and iteration metadata.

        Raises
        ------
        InvalidParameterError
            If ``seed`` is not an integer in ``[0, n_nodes)``.
        """
        self._require_preprocessed()
        node = self._validate_seed(seed)
        q = seed_vector(self.graph.n_nodes, node)
        return self.query_vector(q)

    def query_vector(self, q: np.ndarray) -> QueryResult:
        """Solve ``H r = c q`` for an arbitrary starting vector ``q``.

        With several non-zero entries summing to one this computes
        Personalized PageRank, of which single-seed RWR is the special case
        (Section 2.1).
        """
        self._require_preprocessed()
        q_arr = np.asarray(q, dtype=np.float64)
        if q_arr.shape != (self.graph.n_nodes,):
            raise InvalidParameterError(
                f"starting vector must have shape ({self.graph.n_nodes},), "
                f"got {q_arr.shape}"
            )
        start = time.perf_counter()
        with self.telemetry.activate():
            scores, iterations, extras = self._unpack_query_result(self._query(q_arr))
        elapsed = time.perf_counter() - start
        self.telemetry.histogram(
            telemetry.QUERY_SECONDS, help="wall seconds per query"
        ).observe(elapsed, exemplar=tracing.current_trace_hex())
        self._record_convergence(extras.get("converged"), n_queries=1)
        return QueryResult(scores=scores, seconds=elapsed, iterations=iterations, extras=extras)

    def query_many(self, seeds: Iterable[int], batch_size: Optional[int] = None) -> np.ndarray:
        """RWR scores for several seeds; returns an ``(len(seeds), n)`` matrix.

        Row ``i`` equals ``query(seeds[i])``.  This is the bulk-serving
        pattern preprocessing methods exist for: one preprocessing pass,
        arbitrarily many cheap queries — answered here through the solver's
        batched multi-RHS path (Algorithm 4 evaluated once on an
        ``(n, k)`` block of one-hot columns instead of ``k`` times).
        """
        return self.query_many_detailed(seeds, batch_size=batch_size).scores

    def query_many_detailed(
        self,
        seeds: Iterable[int],
        batch_size: Optional[int] = None,
    ) -> BatchQueryResult:
        """Like :meth:`query_many` but with per-seed iterations and timings.

        Parameters
        ----------
        seeds:
            Seed node ids; each must be an integer in ``[0, n_nodes)``.
        batch_size:
            Optional chunk size.  ``None`` (default) answers all seeds in
            one multi-RHS solve; a positive value caps the dense RHS block
            at ``(n, batch_size)`` — the memory/throughput knob for very
            large seed lists.

        Raises
        ------
        InvalidParameterError
            If any seed is outside ``[0, n_nodes)`` or ``batch_size < 1``.
        """
        self._require_preprocessed()
        seed_arr = self._validate_seeds(seeds)
        n = self.graph.n_nodes
        k = seed_arr.shape[0]
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
        if k == 0:
            return BatchQueryResult(
                scores=np.empty((0, n), dtype=np.float64),
                seconds=0.0,
                iterations=np.zeros(0, dtype=np.int64),
                per_seed_seconds=np.zeros(0, dtype=np.float64),
            )

        step = k if batch_size is None else int(batch_size)
        score_rows = np.empty((k, n), dtype=np.float64)
        iterations = np.empty(k, dtype=np.int64)
        per_seed = np.empty(k, dtype=np.float64)
        extras_chunks = []
        chunk_sizes = []
        start = time.perf_counter()
        for lo in range(0, k, step):
            chunk = seed_arr[lo : lo + step]
            size = chunk.shape[0]
            rhs = np.zeros((n, size), dtype=np.float64)
            rhs[chunk, np.arange(size)] = 1.0
            chunk_start = time.perf_counter()
            with self.telemetry.activate():
                scores, chunk_iterations, extras = self._query_batch(rhs)
            chunk_seconds = time.perf_counter() - chunk_start
            score_rows[lo : lo + size] = scores.T
            iterations[lo : lo + size] = np.asarray(chunk_iterations, dtype=np.int64)
            measured = extras.pop("per_seed_seconds", None)
            if measured is None:
                per_seed[lo : lo + size] = chunk_seconds / size
            else:
                per_seed[lo : lo + size] = measured
            extras_chunks.append(extras)
            chunk_sizes.append(size)
        elapsed = time.perf_counter() - start

        exemplar = tracing.current_trace_hex()
        self.telemetry.histogram(
            telemetry.BATCH_SECONDS, help="wall seconds per multi-seed batch"
        ).observe(elapsed, exemplar=exemplar)
        self.telemetry.histogram(
            telemetry.BATCH_SIZE,
            buckets=telemetry.BATCH_SIZE_BUCKETS,
            help="seeds per query_many call",
        ).observe(k)
        self.telemetry.histogram(
            telemetry.QUERY_SECONDS, help="wall seconds per query"
        ).observe_many(per_seed, exemplar=exemplar)
        merged = self._merge_batch_extras(extras_chunks, chunk_sizes)
        self._record_convergence(merged.get("converged"), n_queries=k)
        return BatchQueryResult(
            scores=score_rows,
            seconds=elapsed,
            iterations=iterations,
            per_seed_seconds=per_seed,
            extras=merged,
        )

    def query_topk(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
    ) -> TopKResult:
        """Exact top-``k`` ``(id, score)`` pairs with respect to ``seed``.

        Identical — ids and scores, bit for bit — to :meth:`query` followed
        by the deterministic lexicographic sort (equal scores break toward
        the smaller node id), but the full sort is avoided by the pruned
        selection of :mod:`repro.core.topk`.  ``k`` larger than the
        candidate pool (after optional ``exclude_seed`` and candidate
        dedup) returns the whole ordered pool; ``k < 1`` raises
        :class:`~repro.exceptions.InvalidParameterError`.
        """
        k = validate_k(k)
        node = self._validate_seed(seed)
        scores = self.query(node)
        with self.telemetry.activate():
            return topk_from_scores(scores, node, k, exclude_seed, candidates)

    def query_topk_many(
        self,
        seeds: Iterable[int],
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
        batch_size: Optional[int] = None,
    ) -> List[TopKResult]:
        """Top-``k`` answers for several seeds from one batched solve.

        Semantics per seed match :meth:`query_topk`; the dense solve is
        amortized through :meth:`query_many`'s multi-RHS path.
        """
        k = validate_k(k)
        seed_arr = self._validate_seeds(seeds)
        scores = self.query_many(seed_arr, batch_size=batch_size)
        with self.telemetry.activate():
            return [
                topk_from_scores(scores[i], int(seed), k, exclude_seed, candidates)
                for i, seed in enumerate(seed_arr)
            ]

    def memory_bytes(self) -> int:
        """Bytes of preprocessed data retained for the query phase."""
        return int(sum(matrix_memory_bytes(m) for m in self._retained.values()))

    def retained_matrices(self) -> Dict[str, Any]:
        """Name -> matrix mapping of everything kept for the query phase."""
        return dict(self._retained)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _preprocess(self, graph: Graph) -> None:
        """Build and retain the method's preprocessed data."""

    @abc.abstractmethod
    def _query(self, q: np.ndarray) -> Tuple:
        """Solve for ``q`` (original order).

        Return ``(scores, iterations)`` or ``(scores, iterations, extras)``.
        """

    def _query_batch(self, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        """Solve for every column of the ``(n, k)`` block ``rhs`` at once.

        Returns ``(scores, iterations, extras)`` where ``scores`` is
        ``(n, k)`` (column ``j`` answers column ``j`` of ``rhs``),
        ``iterations`` is ``(k,)``, and per-seed entries in ``extras``
        (e.g. ``"converged"``) are length-``k`` arrays.

        This default loops :meth:`_query` per column — correct for every
        solver, with none of the batching speedups.  Solvers override it
        with a vectorized multi-RHS pass and the base class handles seed
        validation, timing, chunking, and convergence accounting.
        """
        n, k = rhs.shape
        scores = np.empty((n, k), dtype=np.float64)
        iterations = np.zeros(k, dtype=np.int64)
        per_seed = np.zeros(k, dtype=np.float64)
        extras_list = []
        for j in range(k):
            start = time.perf_counter()
            column_scores, column_iterations, extras = self._unpack_query_result(
                self._query(np.ascontiguousarray(rhs[:, j]))
            )
            per_seed[j] = time.perf_counter() - start
            scores[:, j] = column_scores
            iterations[j] = column_iterations
            extras_list.append(extras)
        merged: Dict[str, Any] = {"per_seed_seconds": per_seed}
        if k and all("converged" in extras for extras in extras_list):
            merged["converged"] = np.array(
                [bool(extras["converged"]) for extras in extras_list], dtype=bool
            )
        return scores, iterations, merged

    def _retain(self, name: str, matrix: Any) -> None:
        """Register a matrix as part of the preprocessed data (for memory accounting)."""
        self._retained[name] = matrix

    def _require_preprocessed(self) -> None:
        if self._graph is None:
            raise NotPreprocessedError(
                f"{type(self).__name__}.preprocess(graph) must be called before querying"
            )

    # ------------------------------------------------------------------
    # Shared query plumbing
    # ------------------------------------------------------------------
    def _validate_seed(self, seed) -> int:
        """Check one seed id against ``[0, n_nodes)``; return it as ``int``."""
        return validate_seed(seed, self.graph.n_nodes)

    def _validate_seeds(self, seeds: Iterable[int]) -> np.ndarray:
        """Validate a seed list; return it as an ``int64`` array.

        Vectorized (one array conversion + one bounds check) with error
        messages identical to the scalar path; see
        :func:`repro.core.engine.validate_seeds`.
        """
        return validate_seeds(seeds, self.graph.n_nodes)

    @staticmethod
    def _unpack_query_result(result: Tuple) -> Tuple[np.ndarray, int, Dict[str, Any]]:
        """Normalize a ``_query`` return value to ``(scores, iterations, extras)``."""
        if len(result) == 3:
            scores, iterations, extras = result
            return scores, int(iterations), dict(extras)
        scores, iterations = result
        return scores, int(iterations), {}

    def _record_convergence(self, converged, n_queries: int) -> None:
        """Count queries and warn about (and count) unconverged inner solves."""
        self.telemetry.counter(telemetry.QUERIES_TOTAL, help="queries answered").inc(n_queries)
        self.stats.touch("queries")
        if converged is None:
            return
        flags = np.atleast_1d(np.asarray(converged, dtype=bool))
        failures = int(np.count_nonzero(~flags))
        if failures == 0:
            return
        self.telemetry.counter(
            telemetry.QUERIES_UNCONVERGED,
            help="queries whose inner solve missed the requested tolerance",
        ).inc(failures)
        self.stats.touch("unconverged_queries")
        warnings.warn(
            f"{self.name}: {failures} of {n_queries} queries did not reach "
            f"tol={self.tol}; scores may be less accurate than requested "
            "(raise max_iterations or loosen tol)",
            ConvergenceWarning,
            stacklevel=3,
        )

    @staticmethod
    def _merge_batch_extras(chunks, chunk_sizes) -> Dict[str, Any]:
        """Merge per-chunk extras; per-seed arrays are concatenated."""
        if len(chunks) == 1:
            return chunks[0]
        merged: Dict[str, Any] = {}
        keys = set().union(*chunks) if chunks else set()
        for key in keys:
            values = [chunk.get(key) for chunk in chunks]
            arrays = [np.asarray(v) if v is not None else None for v in values]
            if all(
                a is not None and a.ndim >= 1 and a.shape[0] == size
                for a, size in zip(arrays, chunk_sizes)
            ):
                merged[key] = np.concatenate(arrays)
            else:
                merged[key] = values
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "preprocessed" if self.is_preprocessed else "unfitted"
        return f"{type(self).__name__}(c={self.c}, tol={self.tol}, {state})"
