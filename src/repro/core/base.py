"""The common interface of every RWR method in this package.

Both the paper's contribution (BePI) and all baselines (Bear, LU, GMRES,
power iteration, dense inverse) implement :class:`RWRSolver`, so the
benchmark harness and the applications can treat them interchangeably:

    solver = BePI(c=0.05)
    solver.preprocess(graph)
    scores = solver.query(seed)
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.bench.memory import MemoryBudget, matrix_memory_bytes
from repro.exceptions import InvalidParameterError, NotPreprocessedError
from repro.graph.graph import Graph
from repro.linalg.rwr_matrix import seed_vector


@dataclass
class QueryResult:
    """A scored query with solver-side metadata.

    Attributes
    ----------
    scores:
        RWR score vector in original node order.
    seconds:
        Wall-clock time of the query.
    iterations:
        Iterations the solver's inner iterative method used (0 for purely
        direct methods).
    """

    scores: np.ndarray
    seconds: float
    iterations: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


class RWRSolver(abc.ABC):
    """Abstract base class for Random Walk with Restart solvers.

    Parameters
    ----------
    c:
        Restart probability, strictly in ``(0, 1)``.  The paper uses 0.05.
    tol:
        Error tolerance of the inner iterative method (ignored by direct
        methods).  The paper uses 1e-9.
    memory_budget:
        Optional cap on preprocessed-data bytes; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError` during
        preprocessing, emulating the paper's out-of-memory failures.

    Subclass contract
    -----------------
    Implement :meth:`_preprocess` (store whatever the query phase needs and
    register retained matrices via :meth:`_retain`), and :meth:`_query`
    (given a starting vector in *original* node order, return scores in
    original order).
    """

    #: Human-readable method name used by the benchmark harness.
    name: str = "rwr"

    def __init__(
        self,
        c: float = 0.05,
        tol: float = 1e-9,
        memory_budget: Optional[MemoryBudget] = None,
    ):
        if not 0.0 < c < 1.0:
            raise InvalidParameterError(f"restart probability c must be in (0, 1), got {c}")
        if tol <= 0.0:
            raise InvalidParameterError(f"tol must be positive, got {tol}")
        self.c = c
        self.tol = tol
        self.memory_budget = memory_budget if memory_budget is not None else MemoryBudget()
        self._graph: Optional[Graph] = None
        self._retained: Dict[str, Any] = {}
        self.stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_preprocessed(self) -> bool:
        return self._graph is not None

    @property
    def graph(self) -> Graph:
        """The preprocessed graph."""
        self._require_preprocessed()
        return self._graph  # type: ignore[return-value]

    def preprocess(self, graph: Graph) -> "RWRSolver":
        """Run the preprocessing phase on ``graph``.

        Returns ``self`` so construction and preprocessing chain:
        ``scores = BePI().preprocess(g).query(0)``.
        """
        self._retained = {}
        self.stats = {}
        start = time.perf_counter()
        self._preprocess(graph)
        elapsed = time.perf_counter() - start
        self._graph = graph
        self.stats["preprocess_seconds"] = elapsed
        self.stats["memory_bytes"] = self.memory_bytes()
        self.memory_budget.check(self.stats["memory_bytes"], what=f"{self.name} preprocessed data")
        return self

    def query(self, seed: int) -> np.ndarray:
        """RWR scores of every node with respect to ``seed`` (original ids)."""
        return self.query_detailed(seed).scores

    def query_detailed(self, seed: int) -> QueryResult:
        """Like :meth:`query` but returns timing and iteration metadata."""
        self._require_preprocessed()
        q = seed_vector(self.graph.n_nodes, seed)
        return self.query_vector(q)

    def query_vector(self, q: np.ndarray) -> QueryResult:
        """Solve ``H r = c q`` for an arbitrary starting vector ``q``.

        With several non-zero entries summing to one this computes
        Personalized PageRank, of which single-seed RWR is the special case
        (Section 2.1).
        """
        self._require_preprocessed()
        q_arr = np.asarray(q, dtype=np.float64)
        if q_arr.shape != (self.graph.n_nodes,):
            raise InvalidParameterError(
                f"starting vector must have shape ({self.graph.n_nodes},), "
                f"got {q_arr.shape}"
            )
        start = time.perf_counter()
        scores, iterations = self._query(q_arr)
        elapsed = time.perf_counter() - start
        return QueryResult(scores=scores, seconds=elapsed, iterations=iterations)

    def query_many(self, seeds) -> np.ndarray:
        """RWR scores for several seeds; returns an ``(len(seeds), n)`` matrix.

        Row ``i`` equals ``query(seeds[i])``.  This is the bulk-serving
        pattern preprocessing methods exist for: one preprocessing pass,
        arbitrarily many cheap queries.
        """
        self._require_preprocessed()
        seed_list = [int(s) for s in seeds]
        n = self.graph.n_nodes
        out = np.empty((len(seed_list), n), dtype=np.float64)
        for i, seed in enumerate(seed_list):
            out[i] = self.query(seed)
        return out

    def memory_bytes(self) -> int:
        """Bytes of preprocessed data retained for the query phase."""
        return int(sum(matrix_memory_bytes(m) for m in self._retained.values()))

    def retained_matrices(self) -> Dict[str, Any]:
        """Name -> matrix mapping of everything kept for the query phase."""
        return dict(self._retained)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _preprocess(self, graph: Graph) -> None:
        """Build and retain the method's preprocessed data."""

    @abc.abstractmethod
    def _query(self, q: np.ndarray) -> "tuple[np.ndarray, int]":
        """Solve for ``q`` (original order); return ``(scores, iterations)``."""

    def _retain(self, name: str, matrix: Any) -> None:
        """Register a matrix as part of the preprocessed data (for memory accounting)."""
        self._retained[name] = matrix

    def _require_preprocessed(self) -> None:
        if self._graph is None:
            raise NotPreprocessedError(
                f"{type(self).__name__}.preprocess(graph) must be called before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "preprocessed" if self.is_preprocessed else "unfitted"
        return f"{type(self).__name__}(c={self.c}, tol={self.tol}, {state})"
