"""The paper's contribution: BePI and its supporting machinery.

- :mod:`repro.core.base` — the :class:`~repro.core.base.RWRSolver` interface
  all methods (BePI and baselines) implement,
- :mod:`repro.core.schur` — Schur complement of ``H11``,
- :mod:`repro.core.hub_ratio` — the ``k``-selection sweep of Section 3.4,
- :mod:`repro.core.bepi` — BePI-B, BePI-S and BePI (Algorithms 1-4),
- :mod:`repro.core.accuracy` — the accuracy bounds of Theorem 4.
"""

from repro.core.accuracy import AccuracyBound, accuracy_bound, tolerance_for_target
from repro.core.base import QueryResult, RWRSolver
from repro.core.bepi import BePI, BePIB, BePIS
from repro.core.hub_ratio import SchurSweepRecord, choose_hub_ratio, sweep_hub_ratios
from repro.core.schur import compute_schur_complement

__all__ = [
    "AccuracyBound",
    "BePI",
    "BePIB",
    "BePIS",
    "QueryResult",
    "RWRSolver",
    "SchurSweepRecord",
    "accuracy_bound",
    "choose_hub_ratio",
    "compute_schur_complement",
    "sweep_hub_ratios",
    "tolerance_for_target",
]
