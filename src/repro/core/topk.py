"""Exact top-k selection over RWR score vectors.

Real serving traffic asks "give me the ``k`` best neighbors of this
seed", not an n-dimensional dense vector.  This module is the single
implementation of that selection, shared by every path that answers it —
:meth:`repro.core.base.RWRSolver.query_topk`,
:meth:`repro.core.engine.QueryEngine.query_topk`, the
:class:`repro.serve.WorkerPool` k-pair wire replies, and
:func:`repro.applications.ranking.top_k` — so ids, scores, tie-breaks and
error messages agree everywhere.

Selection contract
------------------
- **Exact**: the returned ``(id, score)`` pairs are identical — ids *and*
  scores, bit for bit — to sorting the full dense score vector with the
  deterministic lexicographic tie-break (higher score first; equal scores
  break toward the smaller node id).
- **Pruned**: the full sort is avoided.  An ``argpartition`` pass finds
  the k-th largest candidate score ``t`` in O(n); every candidate scoring
  strictly below ``t`` provably cannot appear in the exact top-k (the
  pruning bound), so only the survivors — ``k`` plus boundary ties —
  enter the exact tie-broken sort.  The fraction of candidates eliminated
  is exported as the ``rwr.topk.pruned_frac`` histogram.  This is the
  solve-then-partition fallback of Fujiwara et al.'s bound-based top-k
  search: engines that expose no incremental iterate bounds (the block
  elimination of Algorithm 4 produces its exact answer in one pass) still
  get the selection cost down from O(n log n) to O(n + s log s) with
  ``s = |survivors| << n``.
- **Clamped**: ``k`` larger than the candidate pool (after dedup and
  optional seed exclusion) returns the whole pool, ordered — never an
  error.  ``k < 1`` raises :class:`~repro.exceptions.InvalidParameterError`
  with the same message on every path (:func:`validate_k`).

The wire format of the serving layer — ``k`` packed ``(int64 id, float64
score)`` pairs instead of ``n`` float64 scores — lives here too
(:data:`PAIR_DTYPE`, :func:`to_pairs`, :func:`from_pairs`), so the
reply-payload arithmetic in benchmarks and docs has one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.exceptions import InvalidParameterError

#: One top-k entry on the serving wire: an (id, score) pair, 16 bytes.
PAIR_DTYPE = np.dtype([("id", np.int64), ("score", np.float64)])


@dataclass(frozen=True)
class TopKResult:
    """An exact top-k answer: parallel ``ids``/``scores`` arrays.

    ``ids[0]`` is the best-scoring node (ties broken toward the smaller
    id), ``scores[i]`` is the exact RWR score of ``ids[i]``.  The arrays
    may be shorter than the requested ``k`` when the candidate pool was
    smaller (see :func:`select_topk`).
    """

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def nbytes(self) -> int:
        """Wire size of this answer as packed (int64, float64) pairs."""
        return len(self) * PAIR_DTYPE.itemsize

    def pairs(self) -> List[Tuple[int, float]]:
        """The answer as a list of ``(id, score)`` tuples (the historical
        :func:`repro.applications.ranking.top_k` return shape)."""
        return [
            (int(node), float(score))
            for node, score in zip(self.ids, self.scores)
        ]


def to_pairs(result: TopKResult) -> np.ndarray:
    """Pack a :class:`TopKResult` into a structured (id, score) pair array.

    This is the serving wire format: ``len(result)`` records of 16 bytes
    each, instead of the ``n * 8`` bytes of a dense score vector.
    """
    packed = np.empty(len(result), dtype=PAIR_DTYPE)
    packed["id"] = result.ids
    packed["score"] = result.scores
    return packed


def from_pairs(packed: np.ndarray) -> TopKResult:
    """Unpack a wire pair array back into a :class:`TopKResult`."""
    arr = np.asarray(packed, dtype=PAIR_DTYPE)
    return TopKResult(
        ids=np.ascontiguousarray(arr["id"]),
        scores=np.ascontiguousarray(arr["score"]),
    )


def validate_k(k) -> int:
    """Shared ``k`` validation: an integer ``>= 1``, returned as ``int``.

    Every top-k entry point (solver, engine, ranking application, worker
    pool) funnels through here so the error message is identical on all of
    them.  Note ``k`` larger than the candidate pool is *not* an error —
    the selection returns the whole pool (documented clamp semantics).
    """
    try:
        value = int(k)
    except (TypeError, ValueError):
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    if value != k or value < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    return value


def resolve_candidates(
    n_nodes: int,
    seed: Optional[int],
    exclude_seed: bool,
    candidates: Optional[np.ndarray],
) -> np.ndarray:
    """The validated, deduplicated candidate pool as a sorted int64 array.

    - ``candidates=None`` means "all nodes".
    - Every explicit candidate id is checked against ``[0, n_nodes)``;
      an out-of-range id raises :class:`InvalidParameterError` naming it.
    - Duplicate candidate ids are collapsed (a repeated id must not
      produce a duplicate ranking entry).
    - With ``exclude_seed=True`` the seed id is removed from the pool.
    """
    if candidates is None:
        pool = np.arange(n_nodes, dtype=np.int64)
    else:
        pool = np.asarray(candidates)
        if pool.ndim != 1:
            raise InvalidParameterError(
                f"candidates must be a 1-d array of node ids, got shape {pool.shape}"
            )
        if pool.dtype.kind not in "uib":
            raise InvalidParameterError(
                f"candidates must be integer node ids, got dtype {pool.dtype}"
            )
        pool = pool.astype(np.int64)
        invalid = (pool < 0) | (pool >= n_nodes)
        if np.any(invalid):
            bad = int(pool[int(np.argmax(invalid))])
            raise InvalidParameterError(
                f"candidate id {bad} out of range [0, {n_nodes})"
            )
        pool = np.unique(pool)
    if exclude_seed and seed is not None:
        pool = pool[pool != seed]
    return pool


def select_topk(scores: np.ndarray, pool: np.ndarray, k: int) -> TopKResult:
    """Exact top-``k`` of ``scores[pool]`` with threshold-bound pruning.

    Equivalent — bit for bit — to the full lexicographic sort
    ``np.lexsort((pool, -scores[pool]))[:k]``, but only the candidates
    that survive the k-th-score lower bound enter the sort.  Returns the
    whole ordered pool when ``k >= len(pool)``.
    """
    k = validate_k(k)
    pool_scores = scores[pool]
    m = pool.shape[0]
    if k >= m:
        # Whole-pool answer: nothing can be pruned, order everything.
        survivors = np.arange(m)
        pruned_frac = 0.0
    else:
        # Pruning bound: t = k-th largest candidate score.  A candidate
        # scoring strictly below t cannot be in the exact top-k under any
        # tie-break, so only scores >= t (k entries plus boundary ties)
        # need the exact ordered sort.
        threshold = np.partition(pool_scores, m - k)[m - k]
        survivors = np.flatnonzero(pool_scores >= threshold)
        pruned_frac = 1.0 - survivors.shape[0] / m
    order = np.lexsort((pool[survivors], -pool_scores[survivors]))[:k]
    chosen = survivors[order]
    telemetry.get_registry().histogram(
        telemetry.TOPK_PRUNED_FRAC,
        buckets=telemetry.FRACTION_BUCKETS,
        help="fraction of candidates eliminated by the top-k pruning bound",
    ).observe(pruned_frac)
    return TopKResult(
        ids=np.ascontiguousarray(pool[chosen]),
        scores=np.ascontiguousarray(pool_scores[chosen]),
    )


def topk_from_scores(
    scores: np.ndarray,
    seed: Optional[int],
    k: int,
    exclude_seed: bool = True,
    candidates: Optional[np.ndarray] = None,
) -> TopKResult:
    """Exact top-``k`` of a dense score vector (validation + selection).

    The one-stop selection every query path uses once it holds a dense
    score vector; see the module docstring for the exact contract.
    """
    pool = resolve_candidates(scores.shape[0], seed, exclude_seed, candidates)
    return select_topk(scores, pool, k)
