"""Schur complement of ``H11`` (Lemma 1 / Algorithm 1 line 6).

``S = H22 - H21 (U1^{-1} (L1^{-1} H12))`` — computed right-to-left through
the inverted LU factors of the block-diagonal ``H11``, exactly as the paper
prescribes, so no dense ``H11^{-1}`` is ever formed.
"""

from __future__ import annotations

from typing import Mapping

import scipy.sparse as sp

from repro.linalg.block_lu import BlockDiagonalLU


def compute_schur_complement(
    blocks: Mapping[str, sp.csr_matrix],
    h11_factors: BlockDiagonalLU,
    drop_tolerance: float = 0.0,
) -> sp.csr_matrix:
    """Compute ``S = H22 - H21 H11^{-1} H12``.

    Parameters
    ----------
    blocks:
        The partition produced by :func:`repro.linalg.rwr_matrix.partition_h`
        (needs ``H12``, ``H21``, ``H22``).
    h11_factors:
        Inverted LU factors of ``H11``.
    drop_tolerance:
        Entries with absolute value at or below this threshold are dropped
        from the result (0 keeps exact values; only numerically exact zeros
        are removed).

    Returns
    -------
    The Schur complement as a CSR matrix of dimension ``n2 x n2``.
    """
    h12 = blocks["H12"]
    h21 = blocks["H21"]
    h22 = blocks["H22"]
    if h12.shape[0] == 0 or h12.shape[1] == 0:
        # No spokes (or no hubs): the correction term vanishes.
        schur = h22.copy().tocsr()
    else:
        inner = h11_factors.solve_matrix(h12)
        schur = (h22 - h21 @ inner).tocsr()
    if drop_tolerance > 0.0:
        mask = abs(schur.data) <= drop_tolerance
        schur.data[mask] = 0.0
    schur.eliminate_zeros()
    schur.sort_indices()
    return schur
