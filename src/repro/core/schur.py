"""Schur complement of ``H11`` (Lemma 1 / Algorithm 1 line 6).

``S = H22 - H21 (U1^{-1} (L1^{-1} H12))`` — computed right-to-left through
the inverted LU factors of the block-diagonal ``H11``, exactly as the paper
prescribes, so no dense ``H11^{-1}`` is ever formed.

:func:`compute_schur_complement_parts` additionally reports the non-zero
counts of ``H22`` and of the correction term ``H21 H11^{-1} H12`` — the two
sides of the Section 3.4 bound ``|S| <= |H22| + |H21 H11^{-1} H12|`` — as
by-products of the build, so the hub-ratio sweep never recomputes the
correction product just to count it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np
import scipy.sparse as sp

from repro.linalg.block_lu import BlockDiagonalLU
from repro.parallel import balanced_chunks, resolve_n_jobs, thread_map


@dataclass(frozen=True)
class SchurComplementParts:
    """The Schur complement plus the sparsity measurements of Section 3.4.

    Attributes
    ----------
    schur:
        ``S = H22 - H21 H11^{-1} H12`` as CSR.
    nnz_h22:
        Non-zeros of ``H22``.
    nnz_correction:
        Non-zeros of the correction term ``H21 H11^{-1} H12``.
    """

    schur: sp.csr_matrix
    nnz_h22: int
    nnz_correction: int


def _solve_matrix_columns(
    h11_factors: BlockDiagonalLU, h12: sp.spmatrix, n_jobs: int
) -> sp.csr_matrix:
    """``H11^{-1} H12`` with the columns of ``H12`` solved in chunks.

    Each output column only depends on the matching input column, and the
    per-entry accumulation order inside the sparse products is fixed by the
    factors' row patterns, so chunking (and the ordered ``hstack``) is
    bit-identical to the single full product.
    """
    n_cols = h12.shape[1]
    if n_jobs == 1 or n_cols < 2:
        return h11_factors.solve_matrix(h12)
    csc = h12.tocsc()
    nnz_per_column = np.diff(csc.indptr).astype(np.float64) + 1.0
    chunks = balanced_chunks(nnz_per_column, n_jobs * 2)

    def solve_chunk(bounds: Tuple[int, int]) -> sp.csr_matrix:
        lo, hi = bounds
        return h11_factors.solve_matrix(csc[:, lo:hi])

    pieces = thread_map(solve_chunk, chunks, n_jobs)
    return sp.hstack(pieces, format="csr")


def compute_schur_complement_parts(
    blocks: Mapping[str, sp.csr_matrix],
    h11_factors: BlockDiagonalLU,
    drop_tolerance: float = 0.0,
    n_jobs: int = 1,
) -> SchurComplementParts:
    """Compute ``S = H22 - H21 H11^{-1} H12`` and its sparsity breakdown.

    Parameters
    ----------
    blocks:
        The partition produced by :func:`repro.linalg.rwr_matrix.partition_h`
        (needs ``H12``, ``H21``, ``H22``).
    h11_factors:
        Inverted LU factors of ``H11``.
    drop_tolerance:
        Entries with absolute value at or below this threshold are dropped
        from the result (0 keeps exact values; only numerically exact zeros
        are removed).
    n_jobs:
        Worker threads for the column-chunked ``H11^{-1} H12`` solve
        (``-1`` = all CPUs).  The result is identical for every value.
    """
    jobs = resolve_n_jobs(n_jobs)
    h12 = blocks["H12"]
    h21 = blocks["H21"]
    h22 = blocks["H22"]
    if h12.shape[0] == 0 or h12.shape[1] == 0:
        # No spokes (or no hubs): the correction term vanishes.
        schur = h22.copy().tocsr()
        nnz_correction = 0
    else:
        inner = _solve_matrix_columns(h11_factors, h12, jobs)
        correction = (h21 @ inner).tocsr()
        schur = (h22 - correction).tocsr()
        correction.eliminate_zeros()
        nnz_correction = int(correction.nnz)
    if drop_tolerance > 0.0:
        mask = abs(schur.data) <= drop_tolerance
        schur.data[mask] = 0.0
    schur.eliminate_zeros()
    schur.sort_indices()
    return SchurComplementParts(
        schur=schur, nnz_h22=int(h22.nnz), nnz_correction=nnz_correction
    )


def compute_schur_complement(
    blocks: Mapping[str, sp.csr_matrix],
    h11_factors: BlockDiagonalLU,
    drop_tolerance: float = 0.0,
    n_jobs: int = 1,
) -> sp.csr_matrix:
    """Compute ``S = H22 - H21 H11^{-1} H12``.

    Thin wrapper around :func:`compute_schur_complement_parts` returning
    only the Schur complement as a CSR matrix of dimension ``n2 x n2``.
    """
    return compute_schur_complement_parts(
        blocks, h11_factors, drop_tolerance=drop_tolerance, n_jobs=n_jobs
    ).schur
