"""Batch-update RWR on dynamic graphs (Section 5 of the paper).

The paper's related-work discussion names the conventional strategy for
preprocessing methods on evolving graphs: buffer updates and re-preprocess
in batches ("store update information such as edge insertions for one day,
and re-preprocess the changed graph at midnight"), and argues BePI is well
suited to it because its preprocessing is fast.

:class:`DynamicRWR` implements exactly that policy around any
:class:`~repro.core.base.RWRSolver`:

- ``add_edges`` / ``remove_edges`` buffer changes,
- queries are answered from the last preprocessed snapshot (staleness is
  observable via :attr:`pending_updates`),
- ``rebuild()`` applies the buffer and re-preprocesses; with
  ``auto_rebuild_threshold`` set, it happens automatically once enough
  updates accumulate.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import QueryResult, RWRSolver
from repro.core.bepi import BePI
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store import ArtifactStore

Edge = Tuple[int, int]


class DynamicRWR:
    """Batch-update wrapper: buffered edge changes + periodic re-preprocessing.

    Parameters
    ----------
    graph:
        Initial graph.
    solver_factory:
        Builds a fresh solver per rebuild (default: ``BePI()``).
    auto_rebuild_threshold:
        Re-preprocess automatically once this many buffered updates
        accumulate; ``None`` disables auto-rebuild.
    artifact_store:
        Optional :class:`~repro.store.ArtifactStore`.  When set, the
        initial snapshot and every *effective* rebuild (skipped no-op
        rebuilds excluded) are published as a new artifact generation, so
        serving workers (:mod:`repro.serve`) can re-open ``current`` and
        pick up the refreshed graph without ever seeing a partial bundle.
        Requires a BePI solver factory — the baselines have no persistable
        artifact format.

    Examples
    --------
    >>> from repro import generate_rmat
    >>> from repro.core.dynamic import DynamicRWR
    >>> dyn = DynamicRWR(generate_rmat(6, 150, seed=1))
    >>> dyn.add_edges([(0, 5), (5, 0)])
    >>> dyn.pending_updates
    2
    >>> dyn.rebuild()
    >>> dyn.pending_updates
    0
    """

    def __init__(
        self,
        graph: Graph,
        solver_factory: Optional[Callable[[], RWRSolver]] = None,
        auto_rebuild_threshold: Optional[int] = None,
        artifact_store: Optional["ArtifactStore"] = None,
    ):
        if auto_rebuild_threshold is not None and auto_rebuild_threshold < 1:
            raise InvalidParameterError("auto_rebuild_threshold must be >= 1 or None")
        self._factory = solver_factory or BePI
        self.auto_rebuild_threshold = auto_rebuild_threshold
        self.artifact_store = artifact_store
        self._graph = graph
        # Buffered insertions as (u, v, weight-or-None); None means "insert
        # with unit weight unless the edge already exists" (the unweighted
        # insertion semantics), a float means "set the edge weight".
        self._added: List[Tuple[int, int, Optional[float]]] = []
        self._removed: List[Edge] = []
        self._solver = self._factory()
        if artifact_store is not None and not isinstance(self._solver, BePI):
            raise InvalidParameterError(
                "artifact_store requires a BePI solver factory; "
                f"got {type(self._solver).__name__}"
            )
        #: Lifecycle metrics of the update/rebuild loop (per-query metrics
        #: live on the active solver's own ``telemetry`` registry).
        self.telemetry = MetricsRegistry()
        start = time.perf_counter()
        self._solver.preprocess(graph)
        self.n_rebuilds = 1
        self.n_skipped_rebuilds = 0
        self.n_published = 0
        self._record_rebuild(time.perf_counter() - start)
        self._publish()
        self._update_gauges()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def pending_updates(self) -> int:
        """Buffered edge changes not yet reflected in query results."""
        return len(self._added) + len(self._removed)

    @property
    def graph(self) -> Graph:
        """The graph of the *current snapshot* (excluding buffered updates)."""
        return self._solver.graph

    @property
    def solver(self) -> RWRSolver:
        """The active (possibly stale) solver."""
        return self._solver

    def add_edges(
        self,
        edges: Iterable[Edge],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Buffer edge insertions (applied at the next rebuild).

        Without ``weights``, an inserted edge gets unit weight — unless it
        already exists at rebuild time, in which case its current weight is
        kept (insertion is idempotent).  With ``weights``, each entry *sets*
        the edge's weight, overwriting any existing value.
        """
        pairs = [(int(u), int(v)) for u, v in edges]
        if weights is None:
            weight_list: List[Optional[float]] = [None] * len(pairs)
        else:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(pairs):
                raise InvalidParameterError(
                    f"got {len(weight_list)} weights for {len(pairs)} edges"
                )
            if any(w <= 0.0 for w in weight_list):
                raise InvalidParameterError("edge weights must be positive")
        for (u, v), w in zip(pairs, weight_list):
            self._validate_node(u)
            self._validate_node(v)
            self._added.append((u, v, w))
        self._update_gauges()
        self._maybe_rebuild()

    def remove_edges(self, edges: Iterable[Edge]) -> None:
        """Buffer edge deletions (applied at the next rebuild).

        Deleting an edge that does not exist at rebuild time is a no-op,
        matching the usual log-compaction semantics of batch updates.
        """
        for u, v in edges:
            self._validate_node(u)
            self._validate_node(v)
            self._removed.append((int(u), int(v)))
        self._update_gauges()
        self._maybe_rebuild()

    def rebuild(self) -> None:
        """Apply all buffered updates and re-preprocess.

        Edge weights are carried through: the snapshot's weighted adjacency
        is accumulated into an edge -> weight map, insertions and deletions
        are applied to it, and the new graph is rebuilt with those weights
        (a weighted graph no longer degrades to unit weights).  If the
        buffered updates cancel out to exactly the current graph — e.g. an
        insertion later removed, or deletions of absent edges — the full
        re-preprocess is skipped and only the buffer is cleared
        (``n_skipped_rebuilds`` counts these).
        """
        if self.pending_updates == 0:
            return
        coo = self._graph.adjacency.tocoo()
        edge_weights: Dict[Edge, float] = {
            (int(u), int(v)): float(w)
            for u, v, w in zip(coo.row, coo.col, coo.data)
        }
        baseline = dict(edge_weights)
        for u, v, w in self._added:
            if w is None:
                edge_weights.setdefault((u, v), 1.0)
            else:
                edge_weights[(u, v)] = w
        for edge in self._removed:
            edge_weights.pop(edge, None)
        self._added.clear()
        self._removed.clear()

        if edge_weights == baseline:
            # The buffered adds/removes cancelled to a no-op; the current
            # snapshot is already exact, so skip the re-preprocess.
            self.n_skipped_rebuilds += 1
            self.telemetry.counter(
                "dynamic.rebuilds.skipped", help="rebuilds skipped as no-ops"
            ).inc()
            self._update_gauges()
            return

        if edge_weights:
            items = sorted(edge_weights.items())
            new_edges = np.asarray([edge for edge, _ in items], dtype=np.int64)
            new_weights = np.asarray([w for _, w in items], dtype=np.float64)
            new_graph = Graph.from_edges(
                new_edges, n_nodes=self._graph.n_nodes, weights=new_weights
            )
        else:
            new_graph = Graph.empty(self._graph.n_nodes)
        self._graph = new_graph
        self._solver = self._factory()
        start = time.perf_counter()
        self._solver.preprocess(new_graph)
        self.n_rebuilds += 1
        self._record_rebuild(time.perf_counter() - start)
        self._publish()
        self._update_gauges()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, seed: int) -> np.ndarray:
        """RWR scores from the current snapshot (may lag buffered updates)."""
        return self._solver.query(seed)

    def query_detailed(self, seed: int) -> QueryResult:
        """Like :meth:`query`, with timing metadata."""
        return self._solver.query_detailed(seed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_node(self, node: int) -> None:
        if not 0 <= int(node) < self._graph.n_nodes:
            raise InvalidParameterError(
                f"node {node} out of range for {self._graph.n_nodes} nodes "
                "(the batch-update wrapper does not grow the node set)"
            )

    def _publish(self) -> None:
        """Push the fresh snapshot's artifacts to the store, if configured."""
        if self.artifact_store is None:
            return
        assert isinstance(self._solver, BePI)  # enforced in __init__
        self.artifact_store.publish(self._solver)
        self.n_published += 1
        self.telemetry.counter(
            "dynamic.publishes", help="artifact generations published"
        ).inc()

    def _record_rebuild(self, seconds: float) -> None:
        self.telemetry.counter(
            "dynamic.rebuilds", help="effective re-preprocessing passes (incl. initial)"
        ).inc()
        self.telemetry.histogram(
            "dynamic.rebuild.seconds", help="re-preprocessing wall time"
        ).observe(seconds)

    def _update_gauges(self) -> None:
        self.telemetry.gauge(
            "dynamic.pending_updates", help="buffered edge changes not yet applied"
        ).set(self.pending_updates)
        decided = self.n_skipped_rebuilds + self.n_rebuilds
        self.telemetry.gauge(
            "dynamic.skipped_rebuild_ratio",
            help="share of rebuild decisions skipped as no-ops",
        ).set(self.n_skipped_rebuilds / decided if decided else 0.0)

    def _maybe_rebuild(self) -> None:
        if (
            self.auto_rebuild_threshold is not None
            and self.pending_updates >= self.auto_rebuild_threshold
        ):
            self.rebuild()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicRWR(nodes={self._graph.n_nodes}, "
            f"pending={self.pending_updates}, rebuilds={self.n_rebuilds})"
        )
