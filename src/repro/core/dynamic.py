"""Batch-update RWR on dynamic graphs (Section 5 of the paper).

The paper's related-work discussion names the conventional strategy for
preprocessing methods on evolving graphs: buffer updates and re-preprocess
in batches ("store update information such as edge insertions for one day,
and re-preprocess the changed graph at midnight"), and argues BePI is well
suited to it because its preprocessing is fast.

:class:`DynamicRWR` implements that policy around any
:class:`~repro.core.base.RWRSolver` — and, for BePI, improves on it in two
independent directions:

- **Incremental corrections** (:mod:`repro.core.incremental`): an
  effective update batch is first applied to the existing artifacts as a
  partition-reusing correction with a tracked L1 error bound instead of a
  full re-preprocess; only when the bound exceeds :attr:`error_bound`
  (default ``0.0`` — exact corrections only) does the wrapper fall back to
  re-preprocessing from scratch.
- **Background rebuilds** (``background=True``, requires an
  ``artifact_store``): the effective batch is handed to a supervised child
  process that builds and publishes the next :class:`ArtifactStore`
  generation while the foreground keeps answering queries from the current
  one; the swap happens between queries via :meth:`poll`, so the dynamic
  path never blocks on preprocessing.

The public surface stays the batch-update contract:

- ``add_edges`` / ``remove_edges`` buffer changes,
- queries are answered from the last preprocessed snapshot (staleness is
  observable via :attr:`pending_updates`),
- ``rebuild()`` applies the buffer; with ``auto_rebuild_threshold`` set,
  it happens automatically once enough updates accumulate.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import telemetry
from repro.core.base import BatchQueryResult, QueryResult, RWRSolver
from repro.core.bepi import BePI
from repro.core.incremental import (
    UpdateBatch,
    apply_batch,
    build_updated_bundle,
    incremental_update,
)
from repro.core.topk import TopKResult
from repro.exceptions import InvalidParameterError, ReproError
from repro.graph.graph import Graph
from repro.telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store import ArtifactStore

Edge = Tuple[int, int]

#: Liveness-poll cadence of the background-rebuild supervisor, matching the
#: worker-supervision cadence of :mod:`repro.serve`.
REBUILD_POLL_INTERVAL = 0.1


class BackgroundRebuildError(ReproError):
    """A background rebuild child died or reported a failure."""


def _background_rebuild_main(
    store_root: str,
    batch_payload: Dict[str, Any],
    options: Dict[str, Any],
    result_queue: "mp.Queue",
) -> None:
    """Entry point of the background rebuild child (spawn start method).

    Opens the store's *current* generation, applies the batch, builds the
    updated bundle (incremental correction with full-rebuild fallback) and
    publishes it as the next generation with lineage metadata.  The parent
    learns the outcome through ``result_queue``:
    ``("published", info)`` / ``("skipped", info)`` / ``("error", info)``.
    """
    try:
        from repro.store import ArtifactStore

        store = ArtifactStore(store_root)
        parent_path = store.current_path()
        bundle = store.open_current()
        batch = UpdateBatch.from_dict(batch_payload)
        new_graph = apply_batch(bundle.graph, batch)
        if new_graph is None:
            result_queue.put(("skipped", {"n_updates": batch.n_updates}))
            return
        result = build_updated_bundle(
            bundle,
            new_graph,
            bound_threshold=float(options.get("error_bound", 0.0)),
            n_jobs=int(options.get("n_jobs", 1)),
            force_full=bool(options.get("force_full", False)),
        )
        lineage = {
            "parent": parent_path.name if parent_path is not None else None,
            "batch_digest": batch.digest(),
            "n_updates": batch.n_updates,
            "mode": result.mode,
            "error_bound": result.error_bound,
        }
        path = store.publish(result.bundle, metadata=lineage)
        result_queue.put(
            (
                "published",
                {
                    "generation": path.name,
                    "mode": result.mode,
                    "error_bound": result.error_bound,
                    "seconds": result.seconds,
                    "n_updates": batch.n_updates,
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 - crosses the process boundary
        try:
            result_queue.put(("error", {"error": f"{type(exc).__name__}: {exc}"}))
        except Exception:
            pass
        raise


class DynamicRWR:
    """Batch-update wrapper: buffered edge changes + incremental rebuilds.

    Parameters
    ----------
    graph:
        Initial graph.
    solver_factory:
        Builds a fresh solver per full rebuild (default: ``BePI()``).
    auto_rebuild_threshold:
        Rebuild automatically once this many buffered updates accumulate;
        ``None`` disables auto-rebuild.
    artifact_store:
        Optional :class:`~repro.store.ArtifactStore`.  When set, the
        initial snapshot and every *effective* rebuild (skipped no-op
        rebuilds excluded) are published as a new artifact generation —
        with lineage metadata (parent generation, batch digest, error
        bound, rebuild mode) in the manifest — so serving workers
        (:mod:`repro.serve`) can re-open ``current`` and pick up the
        refreshed graph without ever seeing a partial bundle.  Requires a
        BePI solver factory — the baselines have no persistable artifact
        format.
    incremental:
        Attempt the partition-reusing correction of
        :func:`repro.core.incremental.incremental_update` before falling
        back to a full re-preprocess (BePI only; baselines always rebuild
        in full).  Default ``True``.
    error_bound:
        Largest tracked L1 error bound an accepted correction may carry.
        The default ``0.0`` admits only *exact* corrections, so query
        results are identical to a full rebuild up to solver tolerance; a
        positive value trades bounded accuracy for update speed.
    background:
        Hand effective batches to a supervised child process that builds
        and publishes the next generation while the foreground keeps
        answering from the current snapshot (requires ``artifact_store``).
        The swap happens between queries — see :meth:`poll` and
        :meth:`wait_for_rebuild`.
    n_jobs:
        Worker threads for block refactorization during rebuilds.

    Examples
    --------
    >>> from repro import generate_rmat
    >>> from repro.core.dynamic import DynamicRWR
    >>> dyn = DynamicRWR(generate_rmat(6, 150, seed=1))
    >>> dyn.add_edges([(0, 5), (5, 0)])
    >>> dyn.pending_updates
    2
    >>> dyn.rebuild()
    >>> dyn.pending_updates
    0
    """

    def __init__(
        self,
        graph: Graph,
        solver_factory: Optional[Callable[[], RWRSolver]] = None,
        auto_rebuild_threshold: Optional[int] = None,
        artifact_store: Optional["ArtifactStore"] = None,
        incremental: bool = True,
        error_bound: float = 0.0,
        background: bool = False,
        n_jobs: int = 1,
    ):
        self._init_policy(
            solver_factory,
            auto_rebuild_threshold,
            artifact_store,
            incremental,
            error_bound,
            background,
            n_jobs,
        )
        self._graph = graph
        self._solver = self._factory()
        self._check_store_factory()
        start = time.perf_counter()
        self._solver.preprocess(graph)
        self.n_rebuilds = 1
        self._record_rebuild(time.perf_counter() - start)
        self._publish(batch=None, mode="full", bound=0.0)
        self._update_gauges()

    @classmethod
    def from_store(
        cls,
        store: "ArtifactStore",
        solver_factory: Optional[Callable[[], RWRSolver]] = None,
        auto_rebuild_threshold: Optional[int] = None,
        incremental: bool = True,
        error_bound: float = 0.0,
        background: bool = False,
        n_jobs: int = 1,
    ) -> "DynamicRWR":
        """Adopt a store's *current* generation instead of preprocessing.

        The wrapper starts serving the published snapshot directly — no
        initial preprocess, no initial publish (``n_rebuilds`` starts at
        0) — and subsequent rebuilds continue the store's generation
        lineage.  Without ``solver_factory``, full rebuilds reproduce the
        adopted bundle's own build configuration.
        """
        from repro.persistence import solver_from_bundle, solver_from_config

        bundle = store.open_current()
        if solver_factory is None:
            config = dict(bundle.config)

            def solver_factory() -> RWRSolver:
                return solver_from_config(config)

        self = cls.__new__(cls)
        self._init_policy(
            solver_factory,
            auto_rebuild_threshold,
            store,
            incremental,
            error_bound,
            background,
            n_jobs,
        )
        self._graph = bundle.graph
        self._solver = solver_from_bundle(bundle, str(store.root))
        self._check_store_factory()
        self.n_rebuilds = 0
        self._update_gauges()
        return self

    def _init_policy(
        self,
        solver_factory: Optional[Callable[[], RWRSolver]],
        auto_rebuild_threshold: Optional[int],
        artifact_store: Optional["ArtifactStore"],
        incremental: bool,
        error_bound: float,
        background: bool,
        n_jobs: int,
    ) -> None:
        if auto_rebuild_threshold is not None and auto_rebuild_threshold < 1:
            raise InvalidParameterError("auto_rebuild_threshold must be >= 1 or None")
        if error_bound < 0.0:
            raise InvalidParameterError(
                f"error_bound must be >= 0, got {error_bound}"
            )
        if background and artifact_store is None:
            raise InvalidParameterError(
                "background rebuilds publish through an ArtifactStore; "
                "pass artifact_store= (or use background=False)"
            )
        self._factory = solver_factory or BePI
        self.auto_rebuild_threshold = auto_rebuild_threshold
        self.artifact_store = artifact_store
        self.incremental = bool(incremental)
        self.error_bound = float(error_bound)
        self.background = bool(background)
        self.n_jobs = max(int(n_jobs), 1)
        # Buffered insertions as (u, v, weight-or-None); None means "insert
        # with unit weight unless the edge already exists" (the unweighted
        # insertion semantics), a float means "set the edge weight".
        self._added: List[Tuple[int, int, Optional[float]]] = []
        self._removed: List[Edge] = []
        self.n_skipped_rebuilds = 0
        self.n_published = 0
        self.n_corrections = 0
        self.n_full_rebuilds = 0
        self.n_background_swaps = 0
        self.last_rebuild_mode: Optional[str] = None
        self.last_error_bound = 0.0
        self._pending: Optional[Tuple[mp.process.BaseProcess, "mp.Queue"]] = None
        self._background_error: Optional[str] = None
        #: Lifecycle metrics of the update/rebuild loop when no ambient
        #: registry is active (per-query metrics live on the active
        #: solver's own ``telemetry`` registry).  Gauge and counter writes
        #: resolve the ambient registry *per call* — installing a fresh
        #: registry via ``telemetry.activate`` after construction redirects
        #: them instead of silently writing to a stale one.
        self.telemetry = MetricsRegistry()

    def _check_store_factory(self) -> None:
        if self.artifact_store is not None and not isinstance(self._solver, BePI):
            raise InvalidParameterError(
                "artifact_store requires a BePI solver factory; "
                f"got {type(self._solver).__name__}"
            )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def pending_updates(self) -> int:
        """Buffered edge changes not yet reflected in query results."""
        return len(self._added) + len(self._removed)

    @property
    def graph(self) -> Graph:
        """The graph of the *current snapshot* (excluding buffered updates)."""
        return self._solver.graph

    @property
    def solver(self) -> RWRSolver:
        """The active (possibly stale) solver."""
        return self._solver

    @property
    def rebuild_in_progress(self) -> bool:
        """Whether a background rebuild child is currently running."""
        return self._pending is not None

    @property
    def background_error(self) -> Optional[str]:
        """Last background-rebuild failure, or ``None``."""
        return self._background_error

    def add_edges(
        self,
        edges: Iterable[Edge],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Buffer edge insertions (applied at the next rebuild).

        Without ``weights``, an inserted edge gets unit weight — unless it
        already exists at rebuild time, in which case its current weight is
        kept (insertion is idempotent).  With ``weights``, each entry *sets*
        the edge's weight, overwriting any existing value.
        """
        pairs = [(int(u), int(v)) for u, v in edges]
        if weights is None:
            weight_list: List[Optional[float]] = [None] * len(pairs)
        else:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(pairs):
                raise InvalidParameterError(
                    f"got {len(weight_list)} weights for {len(pairs)} edges"
                )
            if any(w <= 0.0 for w in weight_list):
                raise InvalidParameterError("edge weights must be positive")
        for (u, v), w in zip(pairs, weight_list):
            self._validate_node(u)
            self._validate_node(v)
            self._added.append((u, v, w))
        self._update_gauges()
        self._maybe_rebuild()

    def remove_edges(self, edges: Iterable[Edge]) -> None:
        """Buffer edge deletions (applied at the next rebuild).

        Deleting an edge that does not exist at rebuild time is a no-op,
        matching the usual log-compaction semantics of batch updates.
        """
        for u, v in edges:
            self._validate_node(u)
            self._validate_node(v)
            self._removed.append((int(u), int(v)))
        self._update_gauges()
        self._maybe_rebuild()

    def rebuild(self) -> None:
        """Apply all buffered updates.

        The effective batch (edge weights carried through; see
        :func:`repro.core.incremental.apply_batch`) is applied as an
        incremental correction when :attr:`incremental` allows and the
        tracked error bound stays within :attr:`error_bound`, and as a
        full re-preprocess otherwise.  A batch that cancels out to exactly
        the current graph skips the rebuild entirely and only clears the
        buffer (``n_skipped_rebuilds`` counts these).

        With ``background=True`` the effective batch is handed to a child
        process instead and this call returns immediately; the new
        generation is adopted between queries (:meth:`poll`) or on
        :meth:`wait_for_rebuild`.
        """
        if self.pending_updates == 0:
            return
        batch = self._take_batch()
        if self.background:
            self._start_background(batch)
            self._update_gauges()
            return
        new_graph = apply_batch(self._graph, batch)
        if new_graph is None:
            self._record_skip()
            return
        self._rebuild_sync(new_graph, batch)
        self._update_gauges()

    # ------------------------------------------------------------------
    # Background rebuilds
    # ------------------------------------------------------------------
    def poll(self) -> bool:
        """Adopt a finished background rebuild, if any; never blocks.

        Returns ``True`` when a new generation was swapped in.  Called
        automatically on every query path, so the foreground picks up the
        child's published generation between queries.  A dead child
        without a result is recorded in :attr:`background_error` (and
        raised from :meth:`wait_for_rebuild`); the foreground keeps
        serving the current snapshot.
        """
        if self._pending is None:
            return False
        process, result_queue = self._pending
        try:
            kind, info = result_queue.get_nowait()
        except queue_module.Empty:
            if process.is_alive():
                return False
            # Child died without reporting: give the queue feeder a final
            # grace window, then record the crash.
            try:
                kind, info = result_queue.get(timeout=1.0)
            except queue_module.Empty:
                self._finish_pending(process)
                self._background_error = (
                    f"background rebuild process died (exitcode {process.exitcode}) "
                    "without publishing a result"
                )
                return False
        self._finish_pending(process)
        return self._adopt_result(kind, info)

    def wait_for_rebuild(self, timeout: Optional[float] = None) -> bool:
        """Block until the pending background rebuild finishes.

        Returns ``True`` once no rebuild is pending (including when none
        was in flight); ``False`` on timeout.  Raises
        :class:`BackgroundRebuildError` if the child failed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._pending is not None:
            self.poll()
            if self._pending is None:
                break
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(REBUILD_POLL_INTERVAL)
        if self._background_error is not None:
            error, self._background_error = self._background_error, None
            raise BackgroundRebuildError(error)
        return True

    def _start_background(self, batch: UpdateBatch) -> None:
        # One rebuild in flight at a time: generations are linear, so the
        # next batch waits for the previous publish (its child must apply
        # the batch on top of the generation the previous child produces).
        self.wait_for_rebuild()
        assert self.artifact_store is not None  # enforced in _init_policy
        ctx = mp.get_context("spawn")
        result_queue: "mp.Queue" = ctx.Queue()
        process = ctx.Process(
            target=_background_rebuild_main,
            args=(
                str(self.artifact_store.root),
                batch.to_dict(),
                {
                    "error_bound": self.error_bound,
                    "n_jobs": self.n_jobs,
                    "force_full": not self.incremental,
                },
                result_queue,
            ),
            daemon=True,
        )
        process.start()
        self._pending = (process, result_queue)

    def _finish_pending(self, process: "mp.process.BaseProcess") -> None:
        self._pending = None
        process.join(timeout=5.0)

    def _adopt_result(self, kind: str, info: Dict[str, Any]) -> bool:
        if kind == "skipped":
            self._record_skip()
            return False
        if kind == "error":
            self._background_error = str(info.get("error", "unknown failure"))
            self._update_gauges()
            return False
        assert self.artifact_store is not None
        from repro.persistence import solver_from_bundle

        bundle = self.artifact_store.open_current()
        self._solver = solver_from_bundle(bundle, str(self.artifact_store.root))
        self._graph = bundle.graph
        mode = str(info.get("mode", "full"))
        bound = float(info.get("error_bound", 0.0))
        self.n_rebuilds += 1
        self.n_background_swaps += 1
        self.n_published += 1
        self._record_mode(mode, bound)
        self._record_rebuild(float(info.get("seconds", 0.0)))
        reg = self._registry()
        reg.counter(
            telemetry.DYNAMIC_BACKGROUND_SWAPS,
            help="background-rebuilt generations adopted by the foreground",
        ).inc()
        reg.counter(
            telemetry.DYNAMIC_PUBLISHES, help="artifact generations published"
        ).inc()
        self._update_gauges()
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, seed: int) -> np.ndarray:
        """RWR scores from the current snapshot (may lag buffered updates)."""
        self.poll()
        return self._solver.query(seed)

    def query_detailed(self, seed: int) -> QueryResult:
        """Like :meth:`query`, with timing metadata."""
        self.poll()
        return self._solver.query_detailed(seed)

    def query_many(
        self, seeds: Iterable[int], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Batched scores via the solver's multi-RHS path
        (:meth:`~repro.core.base.RWRSolver.query_many`)."""
        self.poll()
        return self._solver.query_many(seeds, batch_size=batch_size)

    def query_many_detailed(
        self, seeds: Iterable[int], batch_size: Optional[int] = None
    ) -> BatchQueryResult:
        """Like :meth:`query_many`, with per-seed iterations and timings."""
        self.poll()
        return self._solver.query_many_detailed(seeds, batch_size=batch_size)

    def query_topk(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
    ) -> TopKResult:
        """Exact top-``k`` pairs from the current snapshot
        (:meth:`~repro.core.base.RWRSolver.query_topk`)."""
        self.poll()
        return self._solver.query_topk(
            seed, k, exclude_seed=exclude_seed, candidates=candidates
        )

    def query_topk_many(
        self,
        seeds: Iterable[int],
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
        batch_size: Optional[int] = None,
    ) -> List[TopKResult]:
        """Top-``k`` answers for several seeds from one batched solve."""
        self.poll()
        return self._solver.query_topk_many(
            seeds,
            k,
            exclude_seed=exclude_seed,
            candidates=candidates,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _take_batch(self) -> UpdateBatch:
        batch = UpdateBatch(added=tuple(self._added), removed=tuple(self._removed))
        self._added.clear()
        self._removed.clear()
        return batch

    def _rebuild_sync(self, new_graph: Graph, batch: UpdateBatch) -> None:
        start = time.perf_counter()
        mode, bound = "full", 0.0
        adopted = False
        if self.incremental and isinstance(self._solver, BePI):
            bundle = self._solver.solver_artifacts
            result = incremental_update(
                bundle,
                new_graph,
                bound_threshold=self.error_bound,
                n_jobs=self.n_jobs,
            )
            if result is not None:
                from repro.persistence import solver_from_bundle

                self._solver = solver_from_bundle(result.bundle, "incremental-update")
                mode, bound = "incremental", result.error_bound
                adopted = True
        if not adopted:
            solver = self._factory()
            solver.preprocess(new_graph)
            self._solver = solver
        self._graph = new_graph
        self.n_rebuilds += 1
        self._record_mode(mode, bound)
        self._record_rebuild(time.perf_counter() - start)
        self._publish(batch=batch, mode=mode, bound=bound)

    def _validate_node(self, node: int) -> None:
        if not 0 <= int(node) < self._graph.n_nodes:
            raise InvalidParameterError(
                f"node {node} out of range for {self._graph.n_nodes} nodes "
                "(the batch-update wrapper does not grow the node set)"
            )

    def _publish(
        self, batch: Optional[UpdateBatch], mode: str, bound: float
    ) -> None:
        """Push the fresh snapshot's artifacts to the store, if configured."""
        if self.artifact_store is None:
            return
        assert isinstance(self._solver, BePI)  # enforced in _check_store_factory
        metadata: Optional[Dict[str, Any]] = None
        if batch is not None:
            parent = self.artifact_store.current_path()
            metadata = {
                "parent": parent.name if parent is not None else None,
                "batch_digest": batch.digest(),
                "n_updates": batch.n_updates,
                "mode": mode,
                "error_bound": bound,
            }
        self.artifact_store.publish(self._solver, metadata=metadata)
        self.n_published += 1
        self._registry().counter(
            telemetry.DYNAMIC_PUBLISHES, help="artifact generations published"
        ).inc()

    def _registry(self) -> MetricsRegistry:
        """The ambient registry if one is activated, else the instance one.

        Resolved per call (like :mod:`repro.serve` does) so a caller that
        installs a fresh :class:`MetricsRegistry` after construction keeps
        receiving gauge updates instead of them silently landing on the
        registry captured at ``__init__`` time.
        """
        return telemetry.active_registry() or self.telemetry

    def _record_skip(self) -> None:
        self.n_skipped_rebuilds += 1
        self._registry().counter(
            telemetry.DYNAMIC_REBUILDS_SKIPPED, help="rebuilds skipped as no-ops"
        ).inc()
        self._update_gauges()

    def _record_mode(self, mode: str, bound: float) -> None:
        self.last_rebuild_mode = mode
        self.last_error_bound = float(bound)
        reg = self._registry()
        if mode == "incremental":
            self.n_corrections += 1
            reg.counter(
                telemetry.DYNAMIC_CORRECTIONS,
                help="rebuilds served as incremental corrections",
            ).inc()
        else:
            self.n_full_rebuilds += 1
            reg.counter(
                telemetry.DYNAMIC_FULL_REBUILDS,
                help="rebuilds that re-preprocessed from scratch",
            ).inc()

    def _record_rebuild(self, seconds: float) -> None:
        reg = self._registry()
        reg.counter(
            telemetry.DYNAMIC_REBUILDS,
            help="effective re-preprocessing passes (incl. initial)",
        ).inc()
        reg.histogram(
            telemetry.DYNAMIC_REBUILD_SECONDS, help="re-preprocessing wall time"
        ).observe(seconds)

    def _update_gauges(self) -> None:
        reg = self._registry()
        reg.gauge(
            telemetry.DYNAMIC_PENDING_UPDATES,
            help="buffered edge changes not yet applied",
        ).set(self.pending_updates)
        decided = self.n_skipped_rebuilds + self.n_rebuilds
        reg.gauge(
            telemetry.DYNAMIC_SKIPPED_REBUILD_RATIO,
            help="share of rebuild decisions skipped as no-ops",
        ).set(self.n_skipped_rebuilds / decided if decided else 0.0)
        reg.gauge(
            telemetry.DYNAMIC_ERROR_BOUND,
            help="tracked L1 error bound of the last rebuild",
        ).set(self.last_error_bound)

    def _maybe_rebuild(self) -> None:
        if (
            self.auto_rebuild_threshold is not None
            and self.pending_updates >= self.auto_rebuild_threshold
        ):
            self.rebuild()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicRWR(nodes={self._graph.n_nodes}, "
            f"pending={self.pending_updates}, rebuilds={self.n_rebuilds})"
        )
