"""Batch-update RWR on dynamic graphs (Section 5 of the paper).

The paper's related-work discussion names the conventional strategy for
preprocessing methods on evolving graphs: buffer updates and re-preprocess
in batches ("store update information such as edge insertions for one day,
and re-preprocess the changed graph at midnight"), and argues BePI is well
suited to it because its preprocessing is fast.

:class:`DynamicRWR` implements exactly that policy around any
:class:`~repro.core.base.RWRSolver`:

- ``add_edges`` / ``remove_edges`` buffer changes,
- queries are answered from the last preprocessed snapshot (staleness is
  observable via :attr:`pending_updates`),
- ``rebuild()`` applies the buffer and re-preprocesses; with
  ``auto_rebuild_threshold`` set, it happens automatically once enough
  updates accumulate.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.base import QueryResult, RWRSolver
from repro.core.bepi import BePI
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph

Edge = Tuple[int, int]


class DynamicRWR:
    """Batch-update wrapper: buffered edge changes + periodic re-preprocessing.

    Parameters
    ----------
    graph:
        Initial graph.
    solver_factory:
        Builds a fresh solver per rebuild (default: ``BePI()``).
    auto_rebuild_threshold:
        Re-preprocess automatically once this many buffered updates
        accumulate; ``None`` disables auto-rebuild.

    Examples
    --------
    >>> from repro import generate_rmat
    >>> from repro.core.dynamic import DynamicRWR
    >>> dyn = DynamicRWR(generate_rmat(6, 150, seed=1))
    >>> dyn.add_edges([(0, 5), (5, 0)])
    >>> dyn.pending_updates
    2
    >>> dyn.rebuild()
    >>> dyn.pending_updates
    0
    """

    def __init__(
        self,
        graph: Graph,
        solver_factory: Optional[Callable[[], RWRSolver]] = None,
        auto_rebuild_threshold: Optional[int] = None,
    ):
        if auto_rebuild_threshold is not None and auto_rebuild_threshold < 1:
            raise InvalidParameterError("auto_rebuild_threshold must be >= 1 or None")
        self._factory = solver_factory or BePI
        self.auto_rebuild_threshold = auto_rebuild_threshold
        self._graph = graph
        self._added: List[Edge] = []
        self._removed: List[Edge] = []
        self._solver = self._factory()
        self._solver.preprocess(graph)
        self.n_rebuilds = 1

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def pending_updates(self) -> int:
        """Buffered edge changes not yet reflected in query results."""
        return len(self._added) + len(self._removed)

    @property
    def graph(self) -> Graph:
        """The graph of the *current snapshot* (excluding buffered updates)."""
        return self._solver.graph

    @property
    def solver(self) -> RWRSolver:
        """The active (possibly stale) solver."""
        return self._solver

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Buffer edge insertions (applied at the next rebuild)."""
        for u, v in edges:
            self._validate_node(u)
            self._validate_node(v)
            self._added.append((int(u), int(v)))
        self._maybe_rebuild()

    def remove_edges(self, edges: Iterable[Edge]) -> None:
        """Buffer edge deletions (applied at the next rebuild).

        Deleting an edge that does not exist at rebuild time is a no-op,
        matching the usual log-compaction semantics of batch updates.
        """
        for u, v in edges:
            self._validate_node(u)
            self._validate_node(v)
            self._removed.append((int(u), int(v)))
        self._maybe_rebuild()

    def rebuild(self) -> None:
        """Apply all buffered updates and re-preprocess."""
        if self.pending_updates == 0:
            return
        edges = self._graph.edges()
        edge_set = set(map(tuple, edges.tolist()))
        edge_set.update(self._added)
        edge_set.difference_update(self._removed)
        if edge_set:
            new_edges = np.asarray(sorted(edge_set), dtype=np.int64)
            new_graph = Graph.from_edges(new_edges, n_nodes=self._graph.n_nodes)
        else:
            new_graph = Graph.empty(self._graph.n_nodes)
        self._graph = new_graph
        self._added.clear()
        self._removed.clear()
        self._solver = self._factory()
        self._solver.preprocess(new_graph)
        self.n_rebuilds += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, seed: int) -> np.ndarray:
        """RWR scores from the current snapshot (may lag buffered updates)."""
        return self._solver.query(seed)

    def query_detailed(self, seed: int) -> QueryResult:
        """Like :meth:`query`, with timing metadata."""
        return self._solver.query_detailed(seed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_node(self, node: int) -> None:
        if not 0 <= int(node) < self._graph.n_nodes:
            raise InvalidParameterError(
                f"node {node} out of range for {self._graph.n_nodes} nodes "
                "(the batch-update wrapper does not grow the node set)"
            )

    def _maybe_rebuild(self) -> None:
        if (
            self.auto_rebuild_threshold is not None
            and self.pending_updates >= self.auto_rebuild_threshold
        ):
            self.rebuild()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicRWR(nodes={self._graph.n_nodes}, "
            f"pending={self.pending_updates}, rebuilds={self.n_rebuilds})"
        )
