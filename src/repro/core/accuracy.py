"""Accuracy bounds of BePI (Section 3.6.3, Lemmas 2-4 and Theorem 4).

Theorem 4: with GMRES stopped at relative residual ``eps`` on the Schur
system, the full solution error satisfies

    ||r* - r|| <= sqrt((a ||H31|| + ||H32||)^2 + a^2 + 1)
                  * ||q2~|| / sigma_min(S) * eps

where ``a = ||H12|| / sigma_min(H11)``.  This module computes the bound's
ingredients (spectral norms and smallest singular values) so tests and
benchmarks can verify the theorem empirically, and so callers can back-solve
the tolerance needed for a target accuracy (the inequality at the end of
Section 3.6.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.bepi import BePI
from repro.exceptions import InvalidParameterError
from repro.linalg.rwr_matrix import seed_vector

#: Matrices at or below this dimension use exact dense SVD.
DENSE_SVD_THRESHOLD = 3000


def spectral_norm(matrix: sp.spmatrix) -> float:
    """Largest singular value (2-norm) of a sparse matrix."""
    if min(matrix.shape) == 0 or matrix.nnz == 0:
        return 0.0
    if max(matrix.shape) <= DENSE_SVD_THRESHOLD:
        return float(np.linalg.norm(matrix.toarray(), 2))
    return float(spla.svds(matrix.astype(np.float64), k=1, return_singular_vectors=False)[0])


def smallest_singular_value(matrix: sp.spmatrix) -> float:
    """Smallest singular value of a square sparse matrix.

    Uses exact dense SVD below :data:`DENSE_SVD_THRESHOLD`; above it,
    computes ``1 / ||A^{-1}||_2`` through a sparse LU factorization and
    power iteration on ``A^{-1} A^{-T}`` (equivalent in exact arithmetic).
    """
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise InvalidParameterError("smallest singular value needs a square matrix")
    if n == 0:
        return 0.0
    if n <= DENSE_SVD_THRESHOLD:
        singulars = np.linalg.svd(matrix.toarray(), compute_uv=False)
        return float(singulars[-1])
    lu = spla.splu(sp.csc_matrix(matrix))
    rng = np.random.default_rng(0)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    norm_inv = 0.0
    for _ in range(100):
        w = lu.solve(lu.solve(v), trans="T")
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            break
        v = w / norm
        if abs(norm - norm_inv) <= 1e-10 * max(norm, 1.0):
            norm_inv = norm
            break
        norm_inv = norm
    # norm_inv approximates ||A^{-1}||_2^2 at convergence of the symmetric
    # power iteration on A^{-1} A^{-T}.
    return 1.0 / math.sqrt(norm_inv) if norm_inv > 0 else 0.0


@dataclass(frozen=True)
class AccuracyBound:
    """Ingredients and evaluation of the Theorem 4 bound for one query.

    Attributes
    ----------
    alpha:
        ``||H12||_2 / sigma_min(H11)``.
    sigma_min_h11, sigma_min_schur:
        Smallest singular values of ``H11`` and ``S``.
    norm_h12, norm_h31, norm_h32:
        Spectral norms of the coupling blocks.
    q2_tilde_norm:
        ``||q2~||_2`` of the query's Schur right-hand side.
    factor:
        ``sqrt((alpha ||H31|| + ||H32||)^2 + alpha^2 + 1)``.
    """

    alpha: float
    sigma_min_h11: float
    sigma_min_schur: float
    norm_h12: float
    norm_h31: float
    norm_h32: float
    q2_tilde_norm: float

    @property
    def factor(self) -> float:
        inner = (self.alpha * self.norm_h31 + self.norm_h32) ** 2 + self.alpha**2 + 1.0
        return math.sqrt(inner)

    def error_bound(self, tol: float) -> float:
        """Upper bound on ``||r* - r||_2`` when GMRES stops at tolerance ``tol``."""
        if self.sigma_min_schur == 0.0:
            return math.inf
        return self.factor * self.q2_tilde_norm / self.sigma_min_schur * tol

    def tolerance_for(self, target_error: float) -> float:
        """Largest GMRES tolerance guaranteeing ``||r* - r||_2 <= target_error``."""
        if target_error <= 0:
            raise InvalidParameterError("target_error must be positive")
        denominator = self.factor * self.q2_tilde_norm
        if denominator == 0.0:
            return math.inf
        return target_error * self.sigma_min_schur / denominator


def accuracy_bound(solver: BePI, seed: int) -> AccuracyBound:
    """Compute the Theorem 4 bound ingredients for ``solver`` and ``seed``.

    The solver must be preprocessed.  Spectral quantities depend only on the
    preprocessing; ``||q2~||`` depends on the query.
    """
    artifacts = solver.artifacts
    blocks = artifacts.blocks
    c = solver.c
    n1, n2 = artifacts.n1, artifacts.n2

    q = seed_vector(solver.graph.n_nodes, seed)
    qp = artifacts.permutation.apply_to_vector(q)
    q1, q2 = qp[:n1], qp[n1 : n1 + n2]
    if n1 > 0:
        q2_tilde = c * q2 - blocks["H21"] @ artifacts.h11_factors.solve(c * q1)
    else:
        q2_tilde = c * q2

    if n1 > 0:
        if "H11" in blocks:
            sigma_min_h11 = smallest_singular_value(blocks["H11"])
        else:
            # Solvers restored from a v2 archive carry only the inverted LU
            # factors; sigma_min(H11) = 1 / sigma_max(H11^{-1}) exactly.
            h11_inv = artifacts.h11_factors.u_inv @ artifacts.h11_factors.l_inv
            inv_norm = spectral_norm(h11_inv)
            sigma_min_h11 = 1.0 / inv_norm if inv_norm > 0 else math.inf
        norm_h12 = spectral_norm(blocks["H12"])
        alpha = norm_h12 / sigma_min_h11 if sigma_min_h11 > 0 else math.inf
    else:
        sigma_min_h11 = math.inf
        norm_h12 = 0.0
        alpha = 0.0

    return AccuracyBound(
        alpha=alpha,
        sigma_min_h11=sigma_min_h11,
        sigma_min_schur=smallest_singular_value(artifacts.schur) if n2 else math.inf,
        norm_h12=norm_h12,
        norm_h31=spectral_norm(blocks["H31"]),
        norm_h32=spectral_norm(blocks["H32"]),
        q2_tilde_norm=float(np.linalg.norm(q2_tilde)),
    )


def tolerance_for_target(solver: BePI, seed: int, target_error: float) -> float:
    """Convenience wrapper: the ``eps`` achieving ``||r* - r|| <= target_error``."""
    return accuracy_bound(solver, seed).tolerance_for(target_error)
