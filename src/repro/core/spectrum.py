"""Spectral diagnostics of the Schur complement (Section 4.5.2, Figure 7).

The paper explains BePI's fast GMRES convergence through the eigenvalue
distribution of the preconditioned system: ILU(0) pulls the spectrum into
a tight cluster around 1.  This module computes those spectra for a
preprocessed solver so users (and the Figure 7 bench) can inspect the
effect directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse.linalg as spla

from repro.core.bepi import BePI
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class SpectrumReport:
    """Top eigenvalues of ``S`` and of the preconditioned ``M^{-1} S``.

    Attributes
    ----------
    plain:
        Largest-magnitude eigenvalues of the Schur complement.
    preconditioned:
        Largest-magnitude eigenvalues of ``M^{-1} S`` (``None`` when the
        solver has no preconditioner).
    """

    plain: np.ndarray
    preconditioned: Optional[np.ndarray]

    @staticmethod
    def _dispersion(values: np.ndarray) -> float:
        return float(np.std(np.abs(values)))

    @staticmethod
    def _spread_from_one(values: np.ndarray) -> float:
        return float(np.max(np.abs(values - 1.0)))

    @property
    def dispersion_plain(self) -> float:
        """Standard deviation of ``|lambda|`` for the original spectrum."""
        return self._dispersion(self.plain)

    @property
    def dispersion_preconditioned(self) -> Optional[float]:
        if self.preconditioned is None:
            return None
        return self._dispersion(self.preconditioned)

    @property
    def clustering_improvement(self) -> Optional[float]:
        """How much tighter the preconditioned cluster is (ratio > 1 = better)."""
        if self.preconditioned is None:
            return None
        tight = self._spread_from_one(self.preconditioned)
        if tight == 0.0:
            return float("inf")
        return self._spread_from_one(self.plain) / tight


def schur_spectrum(solver: BePI, n_eigenvalues: int = 100) -> SpectrumReport:
    """Top eigenvalues of the solver's Schur complement, before and after
    preconditioning.

    Parameters
    ----------
    solver:
        A preprocessed :class:`~repro.core.bepi.BePI` (any variant).
    n_eigenvalues:
        How many largest-magnitude eigenvalues to compute (capped at
        ``n2 - 2``, the Arnoldi limit).

    Raises
    ------
    InvalidParameterError
        If the Schur complement is too small for an Arnoldi eigensolve.
    """
    schur = solver.artifacts.schur
    n2 = schur.shape[0]
    if n2 < 3:
        raise InvalidParameterError(
            f"Schur complement of dimension {n2} is too small for eigenvalues"
        )
    k = min(n_eigenvalues, n2 - 2)

    plain = spla.eigs(
        spla.LinearOperator((n2, n2), matvec=lambda v: schur @ v),
        k=k, which="LM", return_eigenvectors=False, maxiter=5000, tol=1e-8,
    )

    preconditioned = None
    if solver.ilu_factors is not None:
        ilu = solver.ilu_factors
        preconditioned = spla.eigs(
            spla.LinearOperator((n2, n2), matvec=lambda v: ilu.solve(schur @ v)),
            k=k, which="LM", return_eigenvectors=False, maxiter=5000, tol=1e-8,
        )

    return SpectrumReport(plain=plain, preconditioned=preconditioned)
