"""Shared preprocessing pipeline (Algorithm 1 / 3, lines 1-6), staged.

Both the BePI solver variants and the hub-ratio sweep of Section 3.4 need
the same sequence — deadend reorder, hub-and-spoke reorder, ``H`` assembly
and partitioning, block-diagonal LU of ``H11``, Schur complement — so it
lives here once, producing a :class:`PreprocessArtifacts` bundle.

The pipeline is split into reusable stages:

- :func:`run_deadend_stage` computes everything *independent of the hub
  ratio ``k``* — the deadend split, the deadend-permuted graph, and the
  non-deadend subgraph ``A_nn`` SlashBurn runs on.  The hub-ratio sweep
  runs it **once** and shares the resulting :class:`DeadendStage` across
  all candidate ``k`` via ``build_artifacts(..., deadend_stage=...)``.
- :func:`build_artifacts` runs the remaining ``k``-dependent stages and
  records the Schur sparsity breakdown (``nnz_h22`` / ``nnz_correction``)
  as build by-products, so sweeps never recompute the correction term.

The embarrassingly-parallel stages (per-block LU inversion, the Schur
column solves) accept ``n_jobs``; results are bit-identical for every
worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.schur import compute_schur_complement_parts
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.block_lu import BlockDiagonalLU, factorize_block_diagonal
from repro.linalg.rwr_matrix import build_h_matrix, partition_h
from repro.reorder.deadend import deadend_reorder
from repro.reorder.hubspoke import HubSpokePartition, hub_and_spoke_partition
from repro.reorder.permutation import Permutation


@dataclass(frozen=True)
class DeadendStage:
    """The ``k``-independent prefix of Algorithm 1 (lines 1-2, deadend part).

    Attributes
    ----------
    permutation:
        Deadend split permutation over original ids (non-deadends first).
    n_non_deadends, n_deadends:
        Node counts on either side of the split.
    nondeadend_graph:
        The non-deadend subgraph ``A_nn`` in deadend order — the input to
        every hub-and-spoke reordering, whatever the hub ratio.
    seconds:
        Wall-clock cost of the stage (paid once per sweep).
    reordered:
        Whether deadend reordering was actually applied (``False`` for the
        Section 3.2.1 ablation, where the split is the identity).
    """

    permutation: Permutation
    n_non_deadends: int
    n_deadends: int
    nondeadend_graph: Graph
    seconds: float
    reordered: bool

    @property
    def n_nodes(self) -> int:
        return self.n_non_deadends + self.n_deadends


@dataclass
class PreprocessArtifacts:
    """Everything Algorithm 1 computes before the (optional) ILU step.

    Attributes
    ----------
    permutation:
        Total node ordering (spokes, hubs, deadends) over original ids.
    n1, n2, n3:
        Spoke / hub / deadend counts.
    block_sizes:
        Diagonal block sizes of ``H11``.
    blocks:
        The ``H`` blocks of Eq. 5, in reordered coordinates.
    h11_factors:
        Inverted LU factors of ``H11``.
    schur:
        The Schur complement ``S``.
    hubspoke:
        The hub-and-spoke partition metadata (SlashBurn iterations, ``k``).
    timings:
        Per-stage wall-clock seconds.
    nnz_h22, nnz_correction:
        Non-zero counts of ``H22`` and of ``H21 H11^{-1} H12`` (the two
        sides of the Section 3.4 bound), recorded as Schur-build
        by-products; ``None`` on artifacts reconstructed from a saved
        archive.
    """

    permutation: Permutation
    n1: int
    n2: int
    n3: int
    block_sizes: np.ndarray
    blocks: Dict[str, sp.csr_matrix]
    h11_factors: BlockDiagonalLU
    schur: sp.csr_matrix
    hubspoke: HubSpokePartition
    timings: Dict[str, float] = field(default_factory=dict)
    nnz_h22: Optional[int] = None
    nnz_correction: Optional[int] = None


def run_deadend_stage(graph: Graph, deadend_reordering: bool = True) -> DeadendStage:
    """Run the hub-ratio-independent prefix of Algorithm 1 on ``graph``.

    The output is identical for every hub ratio, so sweeps compute it once
    and pass it to :func:`build_artifacts` for each candidate ``k``.
    """
    start = time.perf_counter()
    if deadend_reordering:
        dead = deadend_reorder(graph)
        dead_permutation = dead.permutation
        n_nd, n3 = dead.n_non_deadends, dead.n_deadends
    else:
        dead_permutation = Permutation.identity(graph.n_nodes)
        n_nd, n3 = graph.n_nodes, 0
    graph_d = graph.permute(dead_permutation.order)
    # Hub-and-spoke reordering runs on the non-deadend subgraph A_nn only
    # (Algorithm 1, line 2); the adjacency pattern is all SlashBurn needs.
    ann = Graph(graph_d.adjacency[:n_nd, :n_nd])
    seconds = time.perf_counter() - start
    return DeadendStage(
        permutation=dead_permutation,
        n_non_deadends=n_nd,
        n_deadends=n3,
        nondeadend_graph=ann,
        seconds=seconds,
        reordered=deadend_reordering,
    )


def build_artifacts(
    graph: Graph,
    c: float,
    hub_ratio: float,
    deadend_reordering: bool = True,
    hub_selection: str = "slashburn",
    n_jobs: int = 1,
    deadend_stage: Optional[DeadendStage] = None,
) -> PreprocessArtifacts:
    """Run Algorithm 1 lines 1-6 on ``graph``.

    Parameters
    ----------
    graph:
        Input graph in original node order.
    c:
        Restart probability.
    hub_ratio:
        SlashBurn hub selection ratio ``k``.
    deadend_reordering:
        Disable to keep deadends inside the hub-and-spoke blocks (the
        Section 3.2.1 ablation); the result is still correct, just with
        ``n3 = 0`` and a larger non-deadend system.
    hub_selection:
        ``"slashburn"`` or ``"degree"`` (ordering ablation; see
        :func:`repro.reorder.hubspoke.hub_and_spoke_partition`).
    n_jobs:
        Worker threads for the parallel stages (block LU inversion, Schur
        column solves); ``-1`` = all CPUs.  Bit-identical for every value.
    deadend_stage:
        Pre-computed :func:`run_deadend_stage` output to reuse (the
        hub-ratio sweep shares one across all candidates).  Must come from
        the same ``graph`` and ``deadend_reordering`` setting.
    """
    timings: Dict[str, float] = {}

    if deadend_stage is None:
        deadend_stage = run_deadend_stage(graph, deadend_reordering)
    elif (
        deadend_stage.reordered != deadend_reordering
        or deadend_stage.n_nodes != graph.n_nodes
    ):
        raise InvalidParameterError(
            "deadend_stage does not match this graph / deadend_reordering setting"
        )
    timings["deadend_reorder"] = deadend_stage.seconds
    n_nd, n3 = deadend_stage.n_non_deadends, deadend_stage.n_deadends
    dead_permutation = deadend_stage.permutation

    start = time.perf_counter()
    hubspoke = hub_and_spoke_partition(
        deadend_stage.nondeadend_graph, hub_ratio, method=hub_selection
    )
    timings["hub_and_spoke_reorder"] = time.perf_counter() - start
    assert n_nd == hubspoke.n_nodes

    # Lift the non-deadend permutation to the full graph and compose with
    # the deadend split: total order = deadend order refined by hub/spoke.
    embedded = hubspoke.permutation.extend_with_offset(graph.n_nodes, 0)
    total = Permutation(dead_permutation.order[embedded.order])

    start = time.perf_counter()
    reordered = graph.permute(total.order)
    h = build_h_matrix(reordered.adjacency, c)
    blocks = partition_h(h, hubspoke.n_spokes, hubspoke.n_hubs, n3)
    timings["build_and_partition_h"] = time.perf_counter() - start

    start = time.perf_counter()
    h11_factors = factorize_block_diagonal(
        blocks["H11"], hubspoke.block_sizes, n_jobs=n_jobs
    )
    timings["factorize_h11"] = time.perf_counter() - start

    start = time.perf_counter()
    schur_parts = compute_schur_complement_parts(blocks, h11_factors, n_jobs=n_jobs)
    timings["schur_complement"] = time.perf_counter() - start

    return PreprocessArtifacts(
        permutation=total,
        n1=hubspoke.n_spokes,
        n2=hubspoke.n_hubs,
        n3=n3,
        block_sizes=hubspoke.block_sizes,
        blocks=blocks,
        h11_factors=h11_factors,
        schur=schur_parts.schur,
        hubspoke=hubspoke,
        timings=timings,
        nnz_h22=schur_parts.nnz_h22,
        nnz_correction=schur_parts.nnz_correction,
    )
