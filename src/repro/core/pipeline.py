"""Shared preprocessing pipeline (Algorithm 1 / 3, lines 1-6).

Both the BePI solver variants and the hub-ratio sweep of Section 3.4 need
the same sequence — deadend reorder, hub-and-spoke reorder, ``H`` assembly
and partitioning, block-diagonal LU of ``H11``, Schur complement — so it
lives here once, producing a :class:`PreprocessArtifacts` bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.core.schur import compute_schur_complement
from repro.graph.graph import Graph
from repro.linalg.block_lu import BlockDiagonalLU, factorize_block_diagonal
from repro.linalg.rwr_matrix import build_h_matrix, partition_h
from repro.reorder.deadend import deadend_reorder
from repro.reorder.hubspoke import HubSpokePartition, hub_and_spoke_partition
from repro.reorder.permutation import Permutation


@dataclass
class PreprocessArtifacts:
    """Everything Algorithm 1 computes before the (optional) ILU step.

    Attributes
    ----------
    permutation:
        Total node ordering (spokes, hubs, deadends) over original ids.
    n1, n2, n3:
        Spoke / hub / deadend counts.
    block_sizes:
        Diagonal block sizes of ``H11``.
    blocks:
        The six ``H`` blocks of Eq. 5, in reordered coordinates.
    h11_factors:
        Inverted LU factors of ``H11``.
    schur:
        The Schur complement ``S``.
    hubspoke:
        The hub-and-spoke partition metadata (SlashBurn iterations, ``k``).
    timings:
        Per-stage wall-clock seconds.
    """

    permutation: Permutation
    n1: int
    n2: int
    n3: int
    block_sizes: np.ndarray
    blocks: Dict[str, sp.csr_matrix]
    h11_factors: BlockDiagonalLU
    schur: sp.csr_matrix
    hubspoke: HubSpokePartition
    timings: Dict[str, float] = field(default_factory=dict)


def build_artifacts(
    graph: Graph,
    c: float,
    hub_ratio: float,
    deadend_reordering: bool = True,
    hub_selection: str = "slashburn",
) -> PreprocessArtifacts:
    """Run Algorithm 1 lines 1-6 on ``graph``.

    Parameters
    ----------
    graph:
        Input graph in original node order.
    c:
        Restart probability.
    hub_ratio:
        SlashBurn hub selection ratio ``k``.
    deadend_reordering:
        Disable to keep deadends inside the hub-and-spoke blocks (the
        Section 3.2.1 ablation); the result is still correct, just with
        ``n3 = 0`` and a larger non-deadend system.
    hub_selection:
        ``"slashburn"`` or ``"degree"`` (ordering ablation; see
        :func:`repro.reorder.hubspoke.hub_and_spoke_partition`).
    """
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    if deadend_reordering:
        dead = deadend_reorder(graph)
        dead_permutation = dead.permutation
        n_nd, n3 = dead.n_non_deadends, dead.n_deadends
    else:
        dead_permutation = Permutation.identity(graph.n_nodes)
        n_nd, n3 = graph.n_nodes, 0
    timings["deadend_reorder"] = time.perf_counter() - start

    start = time.perf_counter()
    graph_d = graph.permute(dead_permutation.order)
    # Hub-and-spoke reordering runs on the non-deadend subgraph A_nn only
    # (Algorithm 1, line 2); the adjacency pattern is all SlashBurn needs.
    ann = Graph(graph_d.adjacency[:n_nd, :n_nd])
    hubspoke = hub_and_spoke_partition(ann, hub_ratio, method=hub_selection)
    timings["hub_and_spoke_reorder"] = time.perf_counter() - start

    # Lift the non-deadend permutation to the full graph and compose with
    # the deadend split: total order = deadend order refined by hub/spoke.
    embedded = hubspoke.permutation.extend_with_offset(graph.n_nodes, 0)
    total = Permutation(dead_permutation.order[embedded.order])

    start = time.perf_counter()
    reordered = graph.permute(total.order)
    h = build_h_matrix(reordered.adjacency, c)
    blocks = partition_h(h, hubspoke.n_spokes, hubspoke.n_hubs, n3)
    timings["build_and_partition_h"] = time.perf_counter() - start

    start = time.perf_counter()
    h11_factors = factorize_block_diagonal(blocks["H11"], hubspoke.block_sizes)
    timings["factorize_h11"] = time.perf_counter() - start

    start = time.perf_counter()
    schur = compute_schur_complement(blocks, h11_factors)
    timings["schur_complement"] = time.perf_counter() - start

    return PreprocessArtifacts(
        permutation=total,
        n1=hubspoke.n_spokes,
        n2=hubspoke.n_hubs,
        n3=n3,
        block_sizes=hubspoke.block_sizes,
        blocks=blocks,
        h11_factors=h11_factors,
        schur=schur,
        hubspoke=hubspoke,
        timings=timings,
    )
