"""Stateless query engines: the serve half of the build/serve split.

Preprocessing (Algorithms 1-3) is a *build* step; answering queries
(Algorithm 4) is a *serve* step.  Historically both lived inside the
:class:`~repro.core.base.RWRSolver` subclasses, which meant the only way to
answer a query was to hold a full solver object — with its statistics,
memory budget, and preprocessing configuration — even in a worker process
whose sole job is evaluating Algorithm 4 against data somebody else built.

This module separates the two:

- :class:`SolverArtifacts` is the **immutable boundary object** between the
  phases: every matrix and configuration value the query phase reads,
  bundled once, never mutated.  A bundle can come from a fresh
  ``preprocess()`` run or be reassembled zero-copy from memory-mapped
  arrays in an on-disk artifact directory (see :mod:`repro.persistence`) —
  the engines cannot tell the difference.
- :class:`QueryEngine` subclasses are **stateless executors**: they hold a
  reference to a bundle and pure configuration, keep no counters and no
  caches, and may therefore be shared freely across threads and opened
  independently by any number of worker processes
  (:mod:`repro.serve`).

The solver classes now delegate their query phase here; the engine code is
the *same* code that used to live in ``BePI._query`` / ``_query_batch``
(and the Bear / LU equivalents), so scores are unchanged bit for bit.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro import telemetry, tracing
from repro.core.pipeline import PreprocessArtifacts
from repro.core.topk import TopKResult, topk_from_scores, validate_k
from repro.exceptions import InvalidParameterError, SingularMatrixError
from repro.graph.graph import Graph
from repro.linalg.bicgstab import bicgstab
from repro.linalg.gmres import gmres, gmres_multi
from repro.linalg.power import power_iteration
from repro.linalg.preconditioners import JacobiPreconditioner
from repro.reorder.permutation import Permutation


@dataclass(frozen=True)
class SolverArtifacts:
    """Everything the query phase of a block-elimination solver reads.

    Instances are immutable (the dataclass is frozen and every consumer
    treats the member matrices as read-only); when loaded from a v3
    artifact directory the underlying arrays are memory-mapped read-only,
    so accidental mutation raises instead of corrupting shared state.

    Attributes
    ----------
    kind:
        Solver family that produced (and can serve) the bundle:
        ``"bepi"`` or ``"bear"``.
    config:
        Query-phase configuration: ``c``, ``tol``, ``iterative_method``,
        ``gmres_restart``, ``max_iterations`` for BePI; ``c`` for Bear.
        Build-phase settings (``hub_ratio``, ``ilu_engine``, ...) ride
        along for provenance.
    graph:
        The preprocessed graph (original node order).
    preprocess:
        The Algorithm 1-3 output bundle (permutation, blocks, inverted
        ``H11`` factors, Schur complement).
    preconditioner:
        ``ILUFactors`` / ``JacobiPreconditioner`` / ``None`` (BePI only).
    schur_inv:
        The dense (or BEAR-Approx sparse) ``S^{-1}`` (Bear only).
    """

    kind: str
    config: Dict[str, Any]
    graph: Graph
    preprocess: PreprocessArtifacts
    preconditioner: Optional[Any] = None
    schur_inv: Optional[Any] = None

    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes


def validate_seeds(seeds, n_nodes: int) -> np.ndarray:
    """Validate a batch of seed node ids against ``[0, n_nodes)``.

    Vectorized replacement for the historical per-seed Python loop: one
    array conversion plus one bounds check for the common integer-array
    case, which is what million-seed batch serving hands in.  Error
    messages are identical to the scalar path — on any invalid input the
    slow per-element loop re-runs purely to raise the same
    :class:`InvalidParameterError` the loop would have raised.
    """
    if isinstance(seeds, np.ndarray):
        arr = seeds
    else:
        seeds = list(seeds)
        try:
            arr = np.asarray(seeds)
        except (ValueError, TypeError):
            arr = np.asarray(seeds, dtype=object)
    if arr.ndim != 1:
        return _validate_seeds_slow(seeds, n_nodes)
    kind = arr.dtype.kind
    if kind in "uib":
        if kind == "u" and arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            return _validate_seeds_slow(seeds, n_nodes)
        out = arr.astype(np.int64)
    elif kind == "f":
        if arr.size and (
            not np.all(np.isfinite(arr)) or np.any(arr != np.floor(arr))
        ):
            return _validate_seeds_slow(seeds, n_nodes)
        out = arr.astype(np.int64)
    else:
        return _validate_seeds_slow(seeds, n_nodes)
    invalid = (out < 0) | (out >= n_nodes)
    if np.any(invalid):
        node = int(out[int(np.argmax(invalid))])
        raise InvalidParameterError(f"seed node {node} out of range [0, {n_nodes})")
    return out


def validate_seed(seed, n_nodes: int) -> int:
    """Check one seed id against ``[0, n_nodes)``; return it as ``int``."""
    try:
        node = int(seed)
    except (TypeError, ValueError):
        raise InvalidParameterError(f"seed must be an integer node id, got {seed!r}")
    if node != seed:
        raise InvalidParameterError(f"seed must be an integer node id, got {seed!r}")
    if not 0 <= node < n_nodes:
        raise InvalidParameterError(f"seed node {node} out of range [0, {n_nodes})")
    return node


def _validate_seeds_slow(seeds, n_nodes: int) -> np.ndarray:
    """The historical per-seed loop, kept for its exact error messages."""
    return np.array([validate_seed(s, n_nodes) for s in seeds], dtype=np.int64)


def _preconditioner_kind(preconditioner) -> str:
    """Classify a preconditioner for fallback-rung equivalence checks."""
    if preconditioner is None:
        return "none"
    if isinstance(preconditioner, JacobiPreconditioner):
        return "jacobi"
    return "ilu"


def _record_engine_chunk(registry, size: int, seconds: float, converged) -> None:
    """Count one answered chunk (queries, amortized latency, failures)."""
    registry.counter(
        telemetry.QUERIES_TOTAL, help="queries answered"
    ).inc(size)
    if size:
        registry.histogram(
            telemetry.QUERY_SECONDS, help="wall seconds per query (amortized in batches)"
        ).observe_many(
            [seconds / size] * size, exemplar=tracing.current_trace_hex()
        )
    if converged is not None:
        failures = int(np.count_nonzero(~np.atleast_1d(np.asarray(converged, dtype=bool))))
        if failures:
            registry.counter(
                telemetry.QUERIES_UNCONVERGED,
                help="queries whose inner solve missed the requested tolerance",
            ).inc(failures)


class QueryEngine(abc.ABC):
    """Stateless executor of a solver's query phase.

    An engine is a pure function of its (immutable) inputs: it keeps no
    statistics, mutates nothing, and returns plain
    ``(scores, iterations, extras)`` tuples.  Timing, convergence
    accounting and warnings stay in :class:`~repro.core.base.RWRSolver`,
    which now delegates the math here; serving workers use the engine
    directly (:mod:`repro.serve`) without any solver object around it.
    """

    #: Solver family served by this engine class.
    kind: str = "rwr"

    @property
    @abc.abstractmethod
    def n_nodes(self) -> int:
        """Number of nodes scored per query."""

    @abc.abstractmethod
    def query_vector(self, q: np.ndarray) -> Tuple[np.ndarray, int, Dict[str, Any]]:
        """Solve ``H r = c q`` for one starting vector in original order."""

    @abc.abstractmethod
    def query_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        """Solve for every column of an ``(n, k)`` block of starting vectors.

        ``deadline`` is an optional ``time.monotonic()`` budget: engines
        with an iterative inner solve stop at its expiry and return their
        best-effort iterate (``extras["converged"]`` reports what was
        actually reached); direct engines may ignore it.
        """

    def query_many(
        self,
        seeds,
        batch_size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """RWR scores for a batch of seed ids; returns a ``(k, n)`` matrix.

        The serving entry point: validates seeds, builds the one-hot
        right-hand-side block(s), and runs :meth:`query_block`.  Row ``i``
        holds the scores of ``seeds[i]`` in original node order.
        ``deadline`` (a ``time.monotonic()`` instant) bounds the inner
        solves — see :meth:`query_block`.

        Although engines keep no state of their own, this path *does*
        report into the ambient telemetry registry
        (:func:`repro.telemetry.get_registry`): query counts, amortized
        per-query latency, and — crucially — convergence failures, which a
        stateless serving worker would otherwise drop on the floor (the
        flags only lived in the discarded ``query_block`` extras).
        """
        n = self.n_nodes
        seed_arr = validate_seeds(seeds, n)
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
        k = seed_arr.shape[0]
        registry = telemetry.get_registry()
        scores = np.empty((k, n), dtype=np.float64)
        step = k if batch_size is None else int(batch_size)
        batch_start = time.perf_counter()
        for lo in range(0, k, step):
            chunk = seed_arr[lo : lo + step]
            size = chunk.shape[0]
            rhs = np.zeros((n, size), dtype=np.float64)
            rhs[chunk, np.arange(size)] = 1.0
            chunk_start = time.perf_counter()
            if deadline is None:
                block_scores, _, extras = self.query_block(rhs)
            else:
                block_scores, _, extras = self.query_block(rhs, deadline=deadline)
            chunk_seconds = time.perf_counter() - chunk_start
            scores[lo : lo + size] = block_scores.T
            _record_engine_chunk(registry, size, chunk_seconds, extras.get("converged"))
        if k:
            registry.histogram(
                telemetry.BATCH_SECONDS, help="wall seconds per query_many batch"
            ).observe(
                time.perf_counter() - batch_start,
                exemplar=tracing.current_trace_hex(),
            )
            registry.histogram(
                telemetry.BATCH_SIZE,
                buckets=telemetry.BATCH_SIZE_BUCKETS,
                help="seeds per query_many batch",
            ).observe(k)
        return scores

    def query_topk(
        self,
        seed: int,
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
    ) -> TopKResult:
        """Exact top-``k`` ``(id, score)`` pairs for one seed.

        Identical — ids and scores, bit for bit — to running :meth:`query_many`
        and sorting the dense row with the deterministic lexicographic
        tie-break (equal scores break toward the smaller node id); see
        :mod:`repro.core.topk` for the selection contract.  ``k`` beyond
        the candidate pool returns the whole ordered pool.
        """
        return self.query_topk_many(
            [seed], k, exclude_seed=exclude_seed, candidates=candidates,
            deadline=deadline,
        )[0]

    def query_topk_many(
        self,
        seeds,
        k: int,
        exclude_seed: bool = True,
        candidates: Optional[np.ndarray] = None,
        batch_size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[TopKResult]:
        """Exact top-``k`` answers for a batch of seeds (one multi-RHS solve).

        The dense ``(len(seeds), n)`` block never leaves this method: each
        row is reduced to at most ``k`` pairs by the pruned selection of
        :func:`repro.core.topk.topk_from_scores`, which is what lets the
        serving wire carry k-pair replies instead of n-float rows.
        """
        k = validate_k(k)
        seed_arr = validate_seeds(seeds, self.n_nodes)
        scores = self.query_many(seed_arr, batch_size=batch_size, deadline=deadline)
        return [
            topk_from_scores(scores[i], int(seed), k, exclude_seed, candidates)
            for i, seed in enumerate(seed_arr)
        ]


class BlockEliminationEngine(QueryEngine):
    """Shared skeleton of the block-elimination query phase.

    BePI (Algorithm 4) and Bear (Lemma 1) run the *same* elimination
    dance — forward-substitute through ``H11``, solve the Schur system,
    back-substitute for spokes and deadends — and differ only in how the
    Schur system is solved.  Subclasses supply that one step.
    """

    def __init__(self, artifacts: SolverArtifacts):
        if artifacts.kind != self.kind:
            raise InvalidParameterError(
                f"{type(self).__name__} serves {self.kind!r} artifacts, "
                f"got {artifacts.kind!r}"
            )
        self.artifacts = artifacts

    @property
    def n_nodes(self) -> int:
        return self.artifacts.n_nodes

    # -- the one step BePI and Bear disagree on -------------------------
    @abc.abstractmethod
    def _solve_schur(self, rhs: np.ndarray) -> Tuple[np.ndarray, int, bool, float]:
        """Solve ``S r2 = rhs`` for one vector.

        Returns ``(r2, iterations, converged, residual)``.
        """

    @abc.abstractmethod
    def _solve_schur_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Solve ``S R2 = RHS`` for an ``(n2, k)`` block.

        Returns ``(r2, iterations, converged, residuals)`` with per-column
        ``(k,)`` metadata arrays.  ``deadline`` is the optional
        ``time.monotonic()`` budget of :meth:`QueryEngine.query_block`.
        """

    # -- Algorithm 4 / Lemma 1 skeleton ---------------------------------
    def query_vector(self, q: np.ndarray) -> Tuple[np.ndarray, int, Dict[str, Any]]:
        pre = self.artifacts.preprocess
        c = self.artifacts.config["c"]
        n1, n2 = pre.n1, pre.n2
        blocks = pre.blocks

        # Spans mirror Algorithm 4's steps: partition q, the two H11
        # triangular-solve passes (lines 3 and 5), the Schur solve (line 4)
        # and the deadend back-substitution (line 6).
        with telemetry.span("query.partition"):
            qp = pre.permutation.apply_to_vector(q)
            q1 = qp[:n1]
            q2 = qp[n1 : n1 + n2]
            q3 = qp[n1 + n2 :]

        # Line 3: q2~ = c q2 - H21 (U1^{-1} (L1^{-1} (c q1))).
        with telemetry.span("query.h11_solves"):
            if n1 > 0:
                q2_tilde = c * q2 - blocks["H21"] @ pre.h11_factors.solve(c * q1)
            else:
                q2_tilde = c * q2

        # Line 4: solve S r2 = q2~.
        with telemetry.span("query.schur"):
            if n2 > 0:
                r2, iterations, converged, residual = self._solve_schur(q2_tilde)
            else:
                r2 = np.zeros(0, dtype=np.float64)
                iterations, converged, residual = 0, True, 0.0

        # Line 5: r1 = U1^{-1} (L1^{-1} (c q1 - H12 r2)).
        with telemetry.span("query.h11_solves"):
            if n1 > 0:
                r1 = pre.h11_factors.solve(c * q1 - blocks["H12"] @ r2)
            else:
                r1 = np.zeros(0, dtype=np.float64)

        # Line 6: r3 = c q3 - H31 r1 - H32 r2.
        with telemetry.span("query.backsub"):
            r3 = c * q3 - blocks["H31"] @ r1 - blocks["H32"] @ r2

            r = np.concatenate([r1, r2, r3])
            scores = pre.permutation.unapply_to_vector(r)
        return scores, iterations, self._vector_extras(converged, residual)

    def query_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        pre = self.artifacts.preprocess
        c = self.artifacts.config["c"]
        n1, n2 = pre.n1, pre.n2
        blocks = pre.blocks
        k = rhs.shape[1]

        with telemetry.span("query.partition"):
            qp = pre.permutation.apply_to_vector(rhs)
            q1 = qp[:n1]
            q2 = qp[n1 : n1 + n2]
            q3 = qp[n1 + n2 :]

        # Line 3, multi-RHS: Q2~ = c Q2 - H21 (U1^{-1} (L1^{-1} (c Q1))).
        with telemetry.span("query.h11_solves"):
            if n1 > 0:
                q2_tilde = c * q2 - blocks["H21"] @ pre.h11_factors.solve(c * q1)
            else:
                q2_tilde = c * q2

        # Line 4: solve S R2 = Q2~ for the whole block.
        with telemetry.span("query.schur"):
            if n2 > 0:
                r2, iterations, converged, residuals = self._solve_schur_block(
                    q2_tilde, deadline=deadline
                )
            else:
                r2 = np.zeros((0, k), dtype=np.float64)
                iterations = np.zeros(k, dtype=np.int64)
                converged = np.ones(k, dtype=bool)
                residuals = np.zeros(k, dtype=np.float64)

        # Line 5: R1 = U1^{-1} (L1^{-1} (c Q1 - H12 R2)).
        with telemetry.span("query.h11_solves"):
            if n1 > 0:
                r1 = pre.h11_factors.solve(c * q1 - blocks["H12"] @ r2)
            else:
                r1 = np.zeros((0, k), dtype=np.float64)

        # Line 6: R3 = c Q3 - H31 R1 - H32 R2.
        with telemetry.span("query.backsub"):
            r3 = c * q3 - blocks["H31"] @ r1 - blocks["H32"] @ r2

            r = np.concatenate([r1, r2, r3], axis=0)
            scores = pre.permutation.unapply_to_vector(r)
        return scores, iterations, self._block_extras(converged, residuals)

    # -- extras policy (BePI reports convergence; Bear is direct) -------
    def _vector_extras(self, converged: bool, residual: float) -> Dict[str, Any]:
        return {}

    def _block_extras(
        self, converged: np.ndarray, residuals: np.ndarray
    ) -> Dict[str, Any]:
        return {}


class BePIQueryEngine(BlockEliminationEngine):
    """Algorithm 4: the Schur system is solved iteratively per query.

    When the configured solve fails (GMRES stagnates, the ILU factors have
    gone bad), the engine degrades through a **fallback chain** —
    GMRES(ILU) → GMRES(Jacobi) → BiCGSTAB → power iteration — rather than
    returning unconverged scores.  Each rung is cheaper to set up and more
    robust than the one before it: the Jacobi preconditioner is rebuilt
    from the Schur diagonal on the spot, BiCGSTAB follows a different
    Krylov trajectory than GMRES, and the Richardson/power rung converges
    for any Schur complement of a proper RWR system (spectral radius of
    ``I - S`` is below 1).  Rungs equivalent to the primary configuration
    are skipped; which rung answered and its achieved residual land in
    telemetry under ``rwr.queries.fallback.*``.  Disable with
    ``fallback_chain=False`` in the solver configuration.
    """

    kind = "bepi"

    #: Iteration cap for the power-iteration rung (the global safety net;
    #: its per-step cost is one Schur matvec).
    FALLBACK_POWER_ITERATIONS = 10_000

    def _solve_schur(self, rhs: np.ndarray) -> Tuple[np.ndarray, int, bool, float]:
        r2, iterations, converged, residuals = self._solve_schur_block(
            rhs.reshape(-1, 1)
        )
        return (
            np.ascontiguousarray(r2[:, 0]),
            int(iterations[0]),
            bool(converged[0]),
            float(residuals[0]),
        )

    def _solve_schur_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        r2, iterations, converged, residuals = self._solve_primary(rhs, deadline)
        if bool(np.all(converged)) or not self.artifacts.config.get(
            "fallback_chain", True
        ):
            return r2, iterations, converged, residuals
        r2 = np.array(r2, copy=True)
        iterations = np.array(iterations, copy=True)
        converged = np.array(converged, copy=True)
        residuals = np.array(residuals, copy=True)
        pending = np.flatnonzero(~converged)
        for rung in self._fallback_rungs():
            if pending.size == 0:
                break
            if deadline is not None and time.monotonic() >= deadline:
                # Deadline spent: the best-effort iterate (with its
                # residual reported) beats a late exact answer.
                break
            with telemetry.span(f"query.fallback.{rung}"):
                try:
                    fx, fit, fconv, fres = self._solve_rung(
                        rung, np.ascontiguousarray(rhs[:, pending]), deadline
                    )
                except SingularMatrixError:
                    # e.g. a zero on the Schur diagonal: this rung cannot
                    # even be constructed; the next one still can.
                    continue
            # Keep a rung's answer when it converged or at least improved
            # on the best residual so far; never regress.
            better = fconv | (fres < residuals[pending])
            cols = pending[better]
            r2[:, cols] = fx[:, better]
            residuals[cols] = fres[better]
            iterations[pending] += fit
            recovered = pending[fconv]
            if recovered.size:
                converged[recovered] = True
                self._record_fallback(rung, fres[fconv])
            pending = pending[~fconv]
        return r2, iterations, converged, residuals

    # -- primary configured solve ---------------------------------------
    def _solve_primary(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        config = self.artifacts.config
        if config["iterative_method"] == "gmres":
            batch = gmres_multi(
                self.artifacts.preprocess.schur,
                rhs,
                tol=config["tol"],
                max_iterations=config["max_iterations"],
                restart=config["gmres_restart"],
                preconditioner=self.artifacts.preconditioner,
                deadline=deadline,
            )
            return batch.x, batch.n_iterations, batch.converged, batch.final_residuals
        return self._bicgstab_block(rhs, self.artifacts.preconditioner)

    def _bicgstab_block(
        self, rhs: np.ndarray, preconditioner
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        config = self.artifacts.config
        k = rhs.shape[1]
        r2 = np.empty((rhs.shape[0], k), dtype=np.float64)
        iterations = np.zeros(k, dtype=np.int64)
        converged = np.zeros(k, dtype=bool)
        residuals = np.zeros(k, dtype=np.float64)
        for j in range(k):
            result = bicgstab(
                self.artifacts.preprocess.schur,
                np.ascontiguousarray(rhs[:, j]),
                tol=config["tol"],
                max_iterations=config["max_iterations"],
                preconditioner=preconditioner,
            )
            r2[:, j] = result.x
            iterations[j] = result.n_iterations
            converged[j] = result.converged
            residuals[j] = result.final_residual
        return r2, iterations, converged, residuals

    # -- fallback chain --------------------------------------------------
    def _fallback_rungs(self) -> Tuple[str, ...]:
        """Chain rungs in degradation order, minus the primary's equivalent.

        A rung that would re-run the configuration that just failed is
        skipped (same method, same preconditioner kind): retrying it cannot
        succeed and would double the latency of every fallback.
        """
        config = self.artifacts.config
        primary = (
            config["iterative_method"],
            _preconditioner_kind(self.artifacts.preconditioner),
        )
        rungs = []
        for rung, signature in (
            ("gmres_jacobi", ("gmres", "jacobi")),
            ("bicgstab", ("bicgstab", "jacobi")),
            ("power", ("power", "none")),
        ):
            if signature != primary:
                rungs.append(rung)
        return tuple(rungs)

    def _solve_rung(
        self, rung: str, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        config = self.artifacts.config
        if rung == "gmres_jacobi":
            batch = gmres_multi(
                self.artifacts.preprocess.schur,
                rhs,
                tol=config["tol"],
                max_iterations=config["max_iterations"],
                restart=config["gmres_restart"],
                preconditioner=self._jacobi(),
                deadline=deadline,
            )
            return batch.x, batch.n_iterations, batch.converged, batch.final_residuals
        if rung == "bicgstab":
            return self._bicgstab_block(rhs, self._jacobi())
        if rung == "power":
            return self._power_block(rhs)
        raise InvalidParameterError(f"unknown fallback rung {rung!r}")

    def _jacobi(self) -> JacobiPreconditioner:
        """Jacobi preconditioner rebuilt from the Schur diagonal.

        Cached on first use.  The engine stays shareable: a racing rebuild
        computes the identical object, so last-write-wins is harmless.
        """
        cached = getattr(self, "_jacobi_cache", None)
        if cached is None:
            cached = JacobiPreconditioner(self.artifacts.preprocess.schur)
            self._jacobi_cache = cached
        return cached

    def _power_block(
        self, rhs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Last-resort Richardson/power rung for ``S x = b``.

        The RWR power iteration ``r <- (1-c) A~^T r + c q`` has fixed point
        ``(I - (1-c) A~^T) r = c q``; feeding it ``A~^T = (I - S)/(1-c)``
        and ``q = b / c`` therefore solves ``S r = b`` with one Schur-sized
        matvec per step and no factorization or Krylov state to break.
        """
        config = self.artifacts.config
        c = config["c"]
        schur = self.artifacts.preprocess.schur
        cached = getattr(self, "_power_operator_cache", None)
        if cached is None:
            n2 = schur.shape[0]
            cached = sp.csr_matrix(
                (sp.identity(n2, format="csr", dtype=np.float64) - schur) / (1.0 - c)
            )
            self._power_operator_cache = cached
        k = rhs.shape[1]
        r2 = np.empty((rhs.shape[0], k), dtype=np.float64)
        iterations = np.zeros(k, dtype=np.int64)
        converged = np.zeros(k, dtype=bool)
        residuals = np.zeros(k, dtype=np.float64)
        for j in range(k):
            b = np.ascontiguousarray(rhs[:, j])
            result = power_iteration(
                cached,
                b / c,
                c,
                tol=config["tol"],
                max_iterations=self.FALLBACK_POWER_ITERATIONS,
            )
            r2[:, j] = result.r
            iterations[j] = result.n_iterations
            # The power loop stops on update norms; report (and judge) the
            # true relative residual of the Schur system instead.
            scale = float(np.linalg.norm(b))
            residual = float(np.linalg.norm(b - schur @ result.r))
            residual = residual / scale if scale > 0.0 else residual
            residuals[j] = residual
            converged[j] = residual <= config["tol"]
        return r2, iterations, converged, residuals

    def _record_fallback(self, rung: str, residuals: np.ndarray) -> None:
        registry = telemetry.get_registry()
        count = int(np.asarray(residuals).shape[0])
        registry.counter(
            telemetry.FALLBACK_TOTAL, help="queries answered by a fallback rung"
        ).inc(count)
        registry.counter(
            telemetry.FALLBACK_RUNG_PREFIX + rung,
            help=f"queries answered by the {rung} fallback rung",
        ).inc(count)
        registry.histogram(
            telemetry.FALLBACK_RESIDUAL,
            buckets=telemetry.RESIDUAL_BUCKETS,
            help="relative residual achieved by the answering fallback rung",
        ).observe_many(np.asarray(residuals, dtype=np.float64).tolist())

    def _vector_extras(self, converged: bool, residual: float) -> Dict[str, Any]:
        return {"converged": converged, "schur_residual": residual}

    def _block_extras(
        self, converged: np.ndarray, residuals: np.ndarray
    ) -> Dict[str, Any]:
        return {"converged": converged, "schur_residuals": residuals}


class BearQueryEngine(BlockEliminationEngine):
    """Lemma 1: the Schur system is applied through the precomputed inverse."""

    kind = "bear"

    def _solve_schur(self, rhs: np.ndarray) -> Tuple[np.ndarray, int, bool, float]:
        return self.artifacts.schur_inv @ rhs, 0, True, 0.0

    def _solve_schur_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        # Direct solve: one matmul, nothing to interrupt mid-flight.
        k = rhs.shape[1]
        return (
            self.artifacts.schur_inv @ rhs,
            np.zeros(k, dtype=np.int64),
            np.ones(k, dtype=bool),
            np.zeros(k, dtype=np.float64),
        )


class LUQueryEngine(QueryEngine):
    """Two triangular solves per query against a one-time LU of ``H``.

    Unlike the block-elimination engines this one is built from the pieces
    directly (the SuperLU solve closure is not a persistable matrix bundle),
    but the contract is the same: stateless, shareable, no solver object
    required.
    """

    kind = "lu"

    def __init__(
        self,
        solve: Callable[[np.ndarray], np.ndarray],
        permutation: Permutation,
        c: float,
    ):
        self._solve = solve
        self._permutation = permutation
        self._c = c

    @property
    def n_nodes(self) -> int:
        return len(self._permutation)

    def query_vector(self, q: np.ndarray) -> Tuple[np.ndarray, int, Dict[str, Any]]:
        with telemetry.span("query.lu_solve"):
            qp = self._permutation.apply_to_vector(q)
            r = self._solve(self._c * qp)
            return self._permutation.unapply_to_vector(r), 0, {}

    def query_block(
        self, rhs: np.ndarray, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        # Direct triangular solves; the deadline budget does not apply.
        k = rhs.shape[1]
        with telemetry.span("query.lu_solve"):
            qp = self._permutation.apply_to_vector(rhs)
            # SuperLU's dgstrs wants column-major right-hand sides; handing it a
            # C-ordered block costs an internal per-column copy.
            r = self._solve(np.asfortranarray(self._c * qp))
            return self._permutation.unapply_to_vector(r), np.zeros(k, dtype=np.int64), {}
