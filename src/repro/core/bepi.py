"""BePI, BePI-S and BePI-B — the paper's proposed solvers (Algorithms 1-4).

All three share one preprocessing pipeline (deadend reorder, SlashBurn
hub-and-spoke reorder, block elimination with the Schur complement solved
iteratively); they differ only in two policies:

========  =======================================  ==================
variant   hub ratio policy                          preconditioner
========  =======================================  ==================
BePI-B    small ``k`` (concentrate non-zeros)       none
BePI-S    ``k`` minimizing ``|S|`` (Section 3.4)    none
BePI      ``k`` minimizing ``|S|``                  ILU(0) (Sec. 3.5)
========  =======================================  ==================

The query phase follows Algorithm 4 exactly: a (preconditioned) GMRES solve
on the Schur system for ``r2``, two sparse products through the inverted LU
factors of ``H11`` for ``r1``, and a back-substitution for the deadend
scores ``r3``.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.bench.memory import MemoryBudget
from repro.core.base import RWRSolver
from repro.core.engine import BePIQueryEngine, SolverArtifacts
from repro.core.hub_ratio import DEFAULT_CANDIDATES, select_hub_ratio
from repro.core.pipeline import PreprocessArtifacts, build_artifacts
from repro.exceptions import (
    ConvergenceWarning,
    InvalidParameterError,
    SingularMatrixError,
)
from repro.graph.graph import Graph
from repro.linalg.ilu import ILUFactors, ilu0, ilut, spilu_factors
from repro.linalg.preconditioners import JacobiPreconditioner
from repro.parallel import resolve_n_jobs

HubRatio = Union[float, str]

#: Default "small k" for the basic variant.  The paper uses 0.001 on graphs
#: with 1e5-7e7 nodes; on the ~1e3-3e4-node stand-in datasets the same
#: *policy* (a few dozen hubs per SlashBurn round) corresponds to a larger
#: ratio.
DEFAULT_SMALL_HUB_RATIO = 0.05

#: Default sparsifying ratio: the paper selects 0.2-0.3 for every dataset.
DEFAULT_SPARSE_HUB_RATIO = 0.2


class BePI(RWRSolver):
    """Best of Preprocessing and Iterative approaches for RWR.

    Parameters
    ----------
    c:
        Restart probability (paper default 0.05).
    tol:
        Error tolerance ``eps`` of the GMRES solve (paper default 1e-9).
    hub_ratio:
        SlashBurn hub selection ratio ``k`` in ``(0, 1]``, or ``"auto"`` to
        sweep :data:`~repro.core.hub_ratio.DEFAULT_CANDIDATES` and pick the
        ``|S|``-minimizing value (the BePI-S policy, Section 3.4).
    use_preconditioner:
        Precompute a preconditioner for ``S`` and run preconditioned GMRES
        (Section 3.5).  Disable to obtain BePI-S behaviour.
    ilu_engine:
        Preconditioner engine: ``"ilu0"`` for the from-scratch ILU(0) (the
        paper's choice, default), ``"ilut"`` for the threshold-based ILUT
        (stronger, allows fill), ``"spilu"`` for scipy's SuperLU-based
        incomplete factorization, or ``"jacobi"`` for the cheap diagonal
        preconditioner (ablation lower bar).
    iterative_method:
        Krylov solver for the Schur system: ``"gmres"`` (the paper's
        choice, default) or ``"bicgstab"`` (Section 2.2 notes any
        non-symmetric Krylov method applies).
    gmres_restart:
        Restart length for GMRES; ``None`` = full GMRES (the paper's
        setting — iteration counts stay below ~70, Table 4).  Ignored by
        BiCGSTAB.
    max_iterations:
        Iteration budget for the Schur solve (default: its dimension).
    fallback_chain:
        Degrade through GMRES(Jacobi) → BiCGSTAB → power iteration when the
        configured Schur solve fails to converge (default on; see
        :class:`~repro.core.engine.BePIQueryEngine`).  Disable to surface
        raw convergence failures (ablations, Fig. 6-7 iteration studies).
    memory_budget:
        Optional byte cap on preprocessed data.
    deadend_reorder:
        Disable the deadend separation of Section 3.2.1 (ablation only;
        results remain exact, preprocessing just works on a larger system).
    hub_selection:
        ``"slashburn"`` (paper) or ``"degree"`` — single highest-degree cut
        instead of the iterative shattering (ablation only).
    n_jobs:
        Worker threads for the parallel preprocessing stages (per-block
        ``H11`` LU inversion, Schur column solves); ``-1`` = all CPUs.
        Scores are bit-identical for every value.

    Examples
    --------
    >>> from repro import BePI, generate_rmat
    >>> graph = generate_rmat(8, 1500, seed=7)
    >>> solver = BePI(c=0.05, tol=1e-9, hub_ratio=0.2).preprocess(graph)
    >>> scores = solver.query(0)
    >>> bool(scores[0] > 0)
    True

    Bulk serving goes through the batched query engine: one multi-RHS pass
    of Algorithm 4 answers all seeds, with per-seed convergence reporting.

    >>> matrix = solver.query_many([0, 1, 2])     # (3, n) — row i = query(i)
    >>> matrix.shape == (3, graph.n_nodes)
    True
    >>> batch = solver.query_many_detailed([0, 1, 2])
    >>> bool(batch.all_converged)
    True
    """

    name = "BePI"

    def __init__(
        self,
        c: float = 0.05,
        tol: float = 1e-9,
        hub_ratio: HubRatio = DEFAULT_SPARSE_HUB_RATIO,
        use_preconditioner: bool = True,
        ilu_engine: str = "ilu0",
        iterative_method: str = "gmres",
        gmres_restart: Optional[int] = None,
        max_iterations: Optional[int] = None,
        fallback_chain: bool = True,
        memory_budget: Optional[MemoryBudget] = None,
        deadend_reorder: bool = True,
        hub_selection: str = "slashburn",
        ilut_drop_tolerance: float = 1e-4,
        ilut_fill_factor: int = 20,
        n_jobs: int = 1,
    ):
        super().__init__(c=c, tol=tol, memory_budget=memory_budget)
        if isinstance(hub_ratio, str):
            if hub_ratio != "auto":
                raise InvalidParameterError(
                    f"hub_ratio must be a float in (0, 1] or 'auto', got {hub_ratio!r}"
                )
        elif not 0.0 < float(hub_ratio) <= 1.0:
            raise InvalidParameterError(
                f"hub_ratio must be in (0, 1], got {hub_ratio}"
            )
        if ilu_engine not in ("ilu0", "ilut", "spilu", "jacobi"):
            raise InvalidParameterError(
                f"ilu_engine must be 'ilu0', 'ilut', 'spilu' or 'jacobi', "
                f"got {ilu_engine!r}"
            )
        if iterative_method not in ("gmres", "bicgstab"):
            raise InvalidParameterError(
                f"iterative_method must be 'gmres' or 'bicgstab', "
                f"got {iterative_method!r}"
            )
        if hub_selection not in ("slashburn", "degree"):
            raise InvalidParameterError(
                f"hub_selection must be 'slashburn' or 'degree', got {hub_selection!r}"
            )
        self.hub_ratio = hub_ratio
        self.use_preconditioner = use_preconditioner
        self.ilu_engine = ilu_engine
        self.iterative_method = iterative_method
        self.gmres_restart = gmres_restart
        self.max_iterations = max_iterations
        self.fallback_chain = fallback_chain
        self.deadend_reorder = deadend_reorder
        self.hub_selection = hub_selection
        self.ilut_drop_tolerance = ilut_drop_tolerance
        self.ilut_fill_factor = ilut_fill_factor
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._artifacts: Optional[PreprocessArtifacts] = None
        self._ilu = None  # ILUFactors or JacobiPreconditioner
        self._engine: Optional[BePIQueryEngine] = None

    # ------------------------------------------------------------------
    # Preprocessing phase (Algorithm 3)
    # ------------------------------------------------------------------
    def _preprocess(self, graph: Graph) -> None:
        if isinstance(self.hub_ratio, str):  # "auto"
            # One sweep over the candidates (shared deadend stage, Schur
            # sparsity read from build intermediates) whose winner's
            # artifacts are adopted directly — no rebuild pass.
            start = time.perf_counter()
            selection = select_hub_ratio(
                graph,
                self.c,
                DEFAULT_CANDIDATES,
                deadend_reordering=self.deadend_reorder,
                hub_selection=self.hub_selection,
                n_jobs=self.n_jobs,
            )
            sweep_seconds = time.perf_counter() - start
            k = selection.best_k
            artifacts = selection.artifacts
            preprocess_passes = len(selection.records)
        else:
            k = float(self.hub_ratio)
            sweep_seconds = 0.0
            artifacts = build_artifacts(
                graph,
                self.c,
                k,
                deadend_reordering=self.deadend_reorder,
                hub_selection=self.hub_selection,
                n_jobs=self.n_jobs,
            )
            preprocess_passes = 1
        self._artifacts = artifacts

        self._ilu = None
        ilu_seconds = 0.0
        preconditioner_fallback = None
        if self.use_preconditioner and artifacts.schur.shape[0] > 0:
            start = time.perf_counter()
            try:
                if self.ilu_engine == "ilu0":
                    self._ilu = ilu0(artifacts.schur)
                elif self.ilu_engine == "ilut":
                    self._ilu = ilut(
                        artifacts.schur,
                        drop_tolerance=self.ilut_drop_tolerance,
                        fill_factor=self.ilut_fill_factor,
                    )
                elif self.ilu_engine == "spilu":
                    self._ilu = spilu_factors(artifacts.schur)
                else:
                    self._ilu = JacobiPreconditioner(artifacts.schur)
            except (SingularMatrixError, RuntimeError):
                # Incomplete-factorization breakdown (zero/tiny pivot, or
                # SuperLU giving up): degrade to the Jacobi diagonal, and to
                # no preconditioner at all if even that is singular.  GMRES
                # still converges, just on the unpreconditioned Fig. 6
                # iteration counts.
                try:
                    self._ilu = JacobiPreconditioner(artifacts.schur)
                    preconditioner_fallback = "jacobi"
                except SingularMatrixError:
                    self._ilu = None
                    preconditioner_fallback = "none"
                warnings.warn(
                    f"{self.ilu_engine} factorization of the Schur complement "
                    f"broke down; falling back to "
                    f"{preconditioner_fallback!r} preconditioning",
                    ConvergenceWarning,
                    stacklevel=2,
                )
            ilu_seconds = time.perf_counter() - start

        self._install_artifacts(
            SolverArtifacts(
                kind="bepi",
                config=self._engine_config(),
                graph=graph,
                preprocess=artifacts,
                preconditioner=self._ilu,
            )
        )

        self.stats.update(
            {
                "hub_ratio": k,
                "hub_ratio_sweep_seconds": sweep_seconds,
                "preprocess_passes": preprocess_passes,
                "n_jobs": self.n_jobs,
                "n1": artifacts.n1,
                "n2": artifacts.n2,
                "n3": artifacts.n3,
                "n_blocks": int(artifacts.block_sizes.shape[0]),
                "slashburn_iterations": artifacts.hubspoke.slashburn_iterations,
                "nnz_schur": int(artifacts.schur.nnz),
                "ilu_seconds": ilu_seconds,
                "stage_timings": dict(artifacts.timings),
                "preconditioned": self._ilu is not None,
                "preconditioner_fallback": preconditioner_fallback,
            }
        )

    # ------------------------------------------------------------------
    # Query phase (Algorithm 4) — delegated to the stateless engine
    # ------------------------------------------------------------------
    def _engine_config(self) -> Dict[str, Any]:
        """The query-phase configuration shipped inside the artifact bundle."""
        return {
            "c": self.c,
            "tol": self.tol,
            "iterative_method": self.iterative_method,
            "gmres_restart": self.gmres_restart,
            "max_iterations": self.max_iterations,
            "fallback_chain": self.fallback_chain,
            "hub_ratio": self.hub_ratio,
            "use_preconditioner": self.use_preconditioner,
            "ilu_engine": self.ilu_engine,
        }

    def _install_artifacts(self, bundle: SolverArtifacts) -> None:
        """Adopt an artifact bundle: retain its matrices and build the engine.

        Called at the end of :meth:`_preprocess` and by the persistence
        loaders, so a loaded solver ends up in exactly the state a freshly
        preprocessed one would.  Retained matrices are exactly the output
        list of Algorithm 3: L1^{-1}, U1^{-1}, S, (L2, U2,) H12, H21, H31,
        H32.
        """
        artifacts = bundle.preprocess
        self._artifacts = artifacts
        self._ilu = bundle.preconditioner
        self._engine = BePIQueryEngine(bundle)
        self._retain("L1_inv", artifacts.h11_factors.l_inv)
        self._retain("U1_inv", artifacts.h11_factors.u_inv)
        self._retain("S", artifacts.schur)
        self._retain("H12", artifacts.blocks["H12"])
        self._retain("H21", artifacts.blocks["H21"])
        self._retain("H31", artifacts.blocks["H31"])
        self._retain("H32", artifacts.blocks["H32"])
        if isinstance(self._ilu, ILUFactors):
            self._retain("L2", self._ilu.l)
            self._retain("U2", self._ilu.u)
        elif self._ilu is not None:  # Jacobi: one value per row of S
            self._retain("M_diag", self._ilu._inv_diag)

    def _query(self, q: np.ndarray) -> Tuple[np.ndarray, int, Dict[str, Any]]:
        assert self._engine is not None  # guarded by _require_preprocessed
        return self._engine.query_vector(q)

    def _query_batch(self, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        """Algorithm 4 evaluated once on an ``(n, k)`` block of starting vectors.

        The permutation, the ``H11`` forward/back substitutions, and the
        off-diagonal block products all act on the whole block (one sparse
        matrix-matrix product instead of ``k`` matrix-vector products); the
        Schur systems are solved by :func:`~repro.linalg.gmres.gmres_multi`,
        which shares the preconditioner and the Krylov workspace across
        columns and reports convergence per column.
        """
        assert self._engine is not None
        return self._engine.query_block(rhs)

    # ------------------------------------------------------------------
    # Introspection used by benchmarks and the accuracy analysis
    # ------------------------------------------------------------------
    @property
    def artifacts(self) -> PreprocessArtifacts:
        """The preprocessing artifacts (requires :meth:`preprocess`)."""
        self._require_preprocessed()
        assert self._artifacts is not None
        return self._artifacts

    @property
    def engine(self) -> BePIQueryEngine:
        """The stateless query engine (requires :meth:`preprocess`)."""
        self._require_preprocessed()
        assert self._engine is not None
        return self._engine

    @property
    def solver_artifacts(self) -> SolverArtifacts:
        """The immutable artifact bundle the engine serves."""
        return self.engine.artifacts

    @property
    def ilu_factors(self) -> Optional[ILUFactors]:
        """The ILU(0) preconditioner factors, if any."""
        return self._ilu


class BePIS(BePI):
    """BePI-S: sparsified Schur complement, no preconditioner (Section 3.4)."""

    name = "BePI-S"

    def __init__(self, **kwargs):
        kwargs.setdefault("hub_ratio", DEFAULT_SPARSE_HUB_RATIO)
        kwargs["use_preconditioner"] = False
        super().__init__(**kwargs)


class BePIB(BePI):
    """BePI-B: basic variant — small hub ratio, no preconditioner (Section 3.3)."""

    name = "BePI-B"

    def __init__(self, **kwargs):
        kwargs.setdefault("hub_ratio", DEFAULT_SMALL_HUB_RATIO)
        kwargs["use_preconditioner"] = False
        super().__init__(**kwargs)
