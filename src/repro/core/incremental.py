"""Incremental artifact corrections for edge-update batches.

BePI's own answer to evolving graphs is "buffer updates, re-preprocess in
batches" (Section 5).  A full re-preprocess repeats every stage of
Algorithm 1 — deadend reorder, SlashBurn, block factorization, Schur
complement, preconditioner — even though a small update batch leaves most
of that work bit-identical.  Following the bounded-correction idea of Yoon
et al. (*Fast and Accurate Random Walk with Restart on Dynamic Graphs with
Guarantees*), this module applies a batch to an existing artifact bundle
as a *correction* instead:

- the old node ordering and hub/spoke/deadend partition are **reused**
  (the two reordering stages are skipped entirely),
- ``H`` is rebuilt from the new graph in the old order, and only the
  ``H11`` diagonal blocks whose columns actually changed are refactorized
  (per-block LU inversion is independent, so untouched blocks keep their
  old inverted factors bit for bit),
- the Schur complement is updated with a per-affected-block low-rank
  correction ``S' = S + ΔH22 − Σ_b (C'_b − C_b)`` where
  ``C_b = H21[:,b] H11[b]^{-1} H12[b,:]``, instead of re-solving all of
  ``H11^{-1} H12``,
- the (incomplete-factorization) preconditioner of the old Schur
  complement is carried over — it only preconditions, so accuracy is
  unaffected; GMRES merely takes a few extra iterations as ``S`` drifts.

Error bound
-----------
The reused partition cannot represent every new edge.  Two kinds of
entries of the new ``H`` fall outside the served block structure:

- spoke→spoke edges *between different diagonal blocks* of ``H11`` (the
  old SlashBurn partition guarantees none existed at build time), and
- out-edges gained by a node sitting in the deadend band (the engine
  serves ``H13 = H23 = 0`` and ``H33 = I`` by construction).

Those entries are dropped; collected into a residual ``R``, the served
system is ``H̃ = H − R``.  With ``r = c H^{-1} q`` the exact scores and
``r̃ = c H̃^{-1} q`` the served ones,

    ``r − r̃ = −c H^{-1} R H̃^{-1} q``  so  ``‖r − r̃‖₁ ≤ ‖R‖₁ / c``

because ``‖H^{-1}‖₁ ≤ 1/c`` (the Neumann series of a column-substochastic
``(1−c) Ã^T``), the same holds for ``H̃`` (dropping entries keeps the
columns substochastic), and ``‖q‖₁ = 1``.  ``‖R‖₁`` — the largest
column-wise absolute sum of dropped entries — is computed exactly during
the build, so every correction carries a *tracked, guaranteed* L1 error
bound; a batch whose edges all land inside the old structure has
``R = 0`` and the correction is **exact** (up to solver tolerance).  When
the bound crosses the caller's threshold, :func:`build_updated_bundle`
falls back to a full re-preprocess, which re-partitions and resets the
bound to zero.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.engine import SolverArtifacts
from repro.core.pipeline import PreprocessArtifacts
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.block_lu import BlockDiagonalLU, factorize_block_diagonal
from repro.linalg.rwr_matrix import build_h_matrix, partition_h

Edge = Tuple[int, int]


# ----------------------------------------------------------------------
# Update batches
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateBatch:
    """An immutable batch of edge updates, in application order.

    Attributes
    ----------
    added:
        ``(u, v, weight-or-None)`` insertions; ``None`` means "unit weight
        unless the edge already exists" (idempotent unweighted insertion),
        a float *sets* the weight.
    removed:
        ``(u, v)`` deletions; deleting an absent edge is a no-op.
    """

    added: Tuple[Tuple[int, int, Optional[float]], ...] = ()
    removed: Tuple[Edge, ...] = ()

    @property
    def n_updates(self) -> int:
        return len(self.added) + len(self.removed)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — the generation-lineage
        identifier of this batch."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (crosses the spawn boundary of the
        background rebuilder)."""
        return {
            "added": [[int(u), int(v), None if w is None else float(w)]
                      for u, v, w in self.added],
            "removed": [[int(u), int(v)] for u, v in self.removed],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "UpdateBatch":
        return cls(
            added=tuple(
                (int(u), int(v), None if w is None else float(w))
                for u, v, w in payload.get("added", ())
            ),
            removed=tuple(
                (int(u), int(v)) for u, v in payload.get("removed", ())
            ),
        )

    def sources(self) -> List[int]:
        """Nodes whose out-edge set the batch touches (affected columns
        of ``H`` after row renormalization)."""
        return sorted(
            {int(u) for u, _, _ in self.added} | {int(u) for u, _ in self.removed}
        )


def apply_batch(graph: Graph, batch: UpdateBatch) -> Optional[Graph]:
    """Apply ``batch`` to ``graph``; ``None`` when it cancels to a no-op.

    Edge weights are carried through: the snapshot's weighted adjacency is
    accumulated into an edge → weight map, insertions and deletions are
    applied to it, and the new graph is rebuilt with those weights.  If
    the map comes out identical to the snapshot's — an insertion later
    removed, deletions of absent edges, re-inserting an existing edge
    unweighted — the caller can skip the rebuild entirely.
    """
    coo = graph.adjacency.tocoo()
    edge_weights: Dict[Edge, float] = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(coo.row, coo.col, coo.data)
    }
    baseline = dict(edge_weights)
    for u, v, w in batch.added:
        if w is None:
            edge_weights.setdefault((u, v), 1.0)
        else:
            edge_weights[(u, v)] = w
    for edge in batch.removed:
        edge_weights.pop(edge, None)
    if edge_weights == baseline:
        return None
    if edge_weights:
        items = sorted(edge_weights.items())
        edges = np.asarray([edge for edge, _ in items], dtype=np.int64)
        weights = np.asarray([w for _, w in items], dtype=np.float64)
        return Graph.from_edges(edges, n_nodes=graph.n_nodes, weights=weights)
    return Graph.empty(graph.n_nodes)


# ----------------------------------------------------------------------
# The correction engine
# ----------------------------------------------------------------------
@dataclass
class IncrementalResult:
    """A correction applied to an existing bundle.

    Attributes
    ----------
    bundle:
        The updated, query-ready artifact bundle (same permutation and
        partition as the parent; serve or publish it directly).
    error_bound:
        Guaranteed L1 bound ``‖R‖₁ / c`` on per-query score error versus
        the exact new graph; ``0.0`` means the correction is exact.
    n_affected_blocks, n_blocks:
        Diagonal ``H11`` blocks refactorized vs. total.
    seconds:
        Wall-clock cost of the correction.
    timings:
        Per-stage breakdown (``build_h``, ``classify``, ``refactorize``,
        ``schur_correction``).
    preconditioner_reused:
        Whether the parent's Schur preconditioner was carried over.
    """

    bundle: SolverArtifacts
    error_bound: float
    n_affected_blocks: int
    n_blocks: int
    seconds: float = 0.0
    timings: Dict[str, float] = field(default_factory=dict)
    preconditioner_reused: bool = True

    @property
    def exact(self) -> bool:
        return self.error_bound == 0.0


def _changed_rows(old: sp.csr_matrix, new: sp.csr_matrix) -> np.ndarray:
    """Row indices whose pattern or values differ between two CSR matrices."""
    delta = (sp.csr_matrix(new) - sp.csr_matrix(old)).tocsr()
    delta.eliminate_zeros()
    return np.flatnonzero(np.diff(delta.indptr))


def _block_ranges(block_sizes: np.ndarray) -> np.ndarray:
    """Start offsets of each diagonal block (length ``b + 1``)."""
    return np.concatenate([[0], np.cumsum(block_sizes)]).astype(np.int64)


def _gather_index(block_ids: np.ndarray, starts: np.ndarray,
                  sizes: np.ndarray) -> np.ndarray:
    """Concatenated (ascending) row/col index range of the given blocks."""
    return np.concatenate(
        [np.arange(starts[b], starts[b] + sizes[b], dtype=np.int64)
         for b in block_ids]
    )


def _block_correction(
    h21: sp.spmatrix,
    h12: sp.spmatrix,
    l_inv: sp.spmatrix,
    u_inv: sp.spmatrix,
    idx: np.ndarray,
) -> sp.csr_matrix:
    """``Σ_{b∈idx-blocks} H21[:,b] H11[b]^{-1} H12[b,:]`` in one pass.

    ``idx`` is the concatenated index range of the affected blocks; the
    sliced factors stay block diagonal across those blocks, so one triple
    product covers all of them.
    """
    l_sub = sp.csr_matrix(l_inv)[idx][:, idx]
    u_sub = sp.csr_matrix(u_inv)[idx][:, idx]
    h12_sub = sp.csr_matrix(h12)[idx]
    h21_sub = sp.csr_matrix(h21)[:, idx]
    inner = u_sub @ (l_sub @ h12_sub)
    return (h21_sub @ inner).tocsr()


def incremental_update(
    bundle: SolverArtifacts,
    new_graph: Graph,
    bound_threshold: Optional[float] = None,
    n_jobs: int = 1,
) -> Optional[IncrementalResult]:
    """Apply an updated graph to ``bundle`` as a partition-reusing correction.

    Returns ``None`` when ``bound_threshold`` is set and the tracked error
    bound would exceed it — the signal to fall back to a full
    re-preprocess.  Only BePI bundles can be corrected.

    The new bundle serves the *new* graph through the *old* ordering and
    partition; see the module docstring for the bound derivation.
    """
    if bundle.kind != "bepi":
        raise InvalidParameterError(
            f"incremental corrections require a BePI bundle, got {bundle.kind!r}"
        )
    pre = bundle.preprocess
    n = new_graph.n_nodes
    if n != len(pre.permutation):
        raise InvalidParameterError(
            f"updated graph has {n} nodes but the bundle was built for "
            f"{len(pre.permutation)} (the update pipeline does not grow the "
            "node set)"
        )
    c = float(bundle.config["c"])
    n1, n2, n3 = pre.n1, pre.n2, pre.n3
    perm = pre.permutation
    block_sizes = np.asarray(pre.block_sizes, dtype=np.int64)
    timings: Dict[str, float] = {}
    started = time.perf_counter()

    # --- Stage 1: H in the old order (the reordering stages are skipped).
    t0 = time.perf_counter()
    reordered = new_graph.permute(perm.order)
    h = build_h_matrix(reordered.adjacency, c)
    timings["build_h"] = time.perf_counter() - t0

    # --- Stage 2: residual + error bound.
    t0 = time.perf_counter()
    block_id = np.repeat(np.arange(block_sizes.size, dtype=np.int64), block_sizes)
    h11_coo = h[:n1, :n1].tocoo()
    off_block = block_id[h11_coo.row] != block_id[h11_coo.col]
    dropped_spoke = (
        np.bincount(
            h11_coo.col[off_block],
            weights=np.abs(h11_coo.data[off_block]),
            minlength=n1,
        )
        if n1
        else np.zeros(0)
    )
    if n3:
        dead_cols = sp.csc_matrix(h)[:, n1 + n2:]
        col_abs = np.asarray(np.abs(dead_cols).sum(axis=0)).ravel()
        dead_diag = h.diagonal()[n1 + n2:]
        # Served as H13 = H23 = 0, H33 = I: everything in these columns is
        # dropped except the unit diagonal the engine assumes.
        dropped_dead = col_abs - np.abs(dead_diag) + np.abs(dead_diag - 1.0)
    else:
        dropped_dead = np.zeros(0)
    residual_norm = max(
        float(dropped_spoke.max()) if dropped_spoke.size else 0.0,
        float(dropped_dead.max()) if dropped_dead.size else 0.0,
        0.0,
    )
    error_bound = residual_norm / c
    timings["classify"] = time.perf_counter() - t0
    if bound_threshold is not None and error_bound > bound_threshold:
        return None

    blocks = partition_h(h, n1, n2, n3)
    if off_block.any():
        keep = ~off_block
        h11_served = sp.csr_matrix(
            (h11_coo.data[keep], (h11_coo.row[keep], h11_coo.col[keep])),
            shape=(n1, n1),
        )
        h11_served.sort_indices()
        blocks["H11"] = h11_served

    # --- Stage 3: refactorize only the H11 blocks whose columns changed.
    # A column of H changes exactly when its node's out-edges changed (row
    # renormalization touches the whole column, nothing else), and the
    # structural stripping of an unchanged column is reproduced verbatim —
    # so untouched blocks keep their old inverted factors bit for bit.
    t0 = time.perf_counter()
    changed_nodes = _changed_rows(bundle.graph.adjacency, new_graph.adjacency)
    changed_pos = perm.positions[changed_nodes]
    spoke_cols = changed_pos[changed_pos < n1]
    affected = (
        np.unique(block_id[spoke_cols]) if spoke_cols.size else
        np.zeros(0, dtype=np.int64)
    )
    starts = _block_ranges(block_sizes)
    if affected.size:
        idx = _gather_index(affected, starts, block_sizes)
        sub = blocks["H11"][idx][:, idx]
        sub_factors = factorize_block_diagonal(
            sub, block_sizes[affected], n_jobs=n_jobs
        )
        h11_factors = BlockDiagonalLU(
            l_inv=_splice(pre.h11_factors.l_inv, sub_factors.l_inv, idx, n1),
            u_inv=_splice(pre.h11_factors.u_inv, sub_factors.u_inv, idx, n1),
            block_sizes=block_sizes,
        )
    else:
        h11_factors = pre.h11_factors
    timings["refactorize"] = time.perf_counter() - t0

    # --- Stage 4: low-rank Schur correction over the affected blocks.
    # S' = S + ΔH22 − Σ_{b affected} (C'_b − C_b): a block contributes a
    # changed correction term C_b = H21[:,b] H11[b]^{-1} H12[b,:] when its
    # factors changed or any of its H12 rows / H21 columns did.
    t0 = time.perf_counter()
    old_h12, old_h21, old_h22 = (
        pre.blocks["H12"], pre.blocks["H21"], pre.blocks["H22"]
    )
    if n2 and n1:
        delta_h12_rows = _changed_rows(old_h12, blocks["H12"])
        delta_h21_cols = _changed_rows(
            sp.csr_matrix(old_h21).T.tocsr(),
            sp.csr_matrix(blocks["H21"]).T.tocsr(),
        )
        schur_blocks = np.unique(
            np.concatenate([
                affected,
                block_id[delta_h12_rows] if delta_h12_rows.size else affected[:0],
                block_id[delta_h21_cols] if delta_h21_cols.size else affected[:0],
            ])
        ).astype(np.int64)
    else:
        schur_blocks = np.zeros(0, dtype=np.int64)
    delta_h22 = (sp.csr_matrix(blocks["H22"]) - sp.csr_matrix(old_h22)).tocsr()
    schur = sp.csr_matrix(pre.schur) + delta_h22
    if schur_blocks.size:
        sidx = _gather_index(schur_blocks, starts, block_sizes)
        c_new = _block_correction(
            blocks["H21"], blocks["H12"],
            h11_factors.l_inv, h11_factors.u_inv, sidx,
        )
        c_old = _block_correction(
            old_h21, old_h12,
            pre.h11_factors.l_inv, pre.h11_factors.u_inv, sidx,
        )
        schur = schur - (c_new - c_old)
    schur = schur.tocsr()
    schur.eliminate_zeros()
    schur.sort_indices()
    timings["schur_correction"] = time.perf_counter() - t0

    new_pre = PreprocessArtifacts(
        permutation=perm,
        n1=n1,
        n2=n2,
        n3=n3,
        block_sizes=block_sizes,
        blocks=blocks,
        h11_factors=h11_factors,
        schur=schur,
        hubspoke=pre.hubspoke,
        timings=dict(timings),
        nnz_h22=int(blocks["H22"].nnz),
        nnz_correction=None,
    )
    new_bundle = SolverArtifacts(
        kind=bundle.kind,
        config=dict(bundle.config),
        graph=new_graph,
        preprocess=new_pre,
        # The parent's (incomplete) factorization still preconditions the
        # drifted S — accuracy is governed by the GMRES tolerance alone, so
        # carrying it over trades a few Krylov iterations for skipping the
        # single most expensive preprocessing stage.
        preconditioner=bundle.preconditioner,
    )
    return IncrementalResult(
        bundle=new_bundle,
        error_bound=error_bound,
        n_affected_blocks=int(affected.size),
        n_blocks=int(block_sizes.size),
        seconds=time.perf_counter() - started,
        timings=timings,
        preconditioner_reused=bundle.preconditioner is not None,
    )


def _splice(
    old: sp.spmatrix, sub: sp.spmatrix, idx: np.ndarray, n: int
) -> sp.csr_matrix:
    """Replace the rows/cols ``idx`` of a block-diagonal matrix with ``sub``.

    ``sub`` is the refactorized band in gathered coordinates; because both
    matrices are block diagonal and ``idx`` is a union of whole blocks,
    every replaced entry stays inside ``idx × idx``.
    """
    mask = np.zeros(n, dtype=bool)
    mask[idx] = True
    old_coo = sp.coo_matrix(old)
    keep = ~mask[old_coo.row]
    sub_coo = sp.coo_matrix(sub)
    rows = np.concatenate([old_coo.row[keep], idx[sub_coo.row]])
    cols = np.concatenate([old_coo.col[keep], idx[sub_coo.col]])
    data = np.concatenate([old_coo.data[keep], sub_coo.data])
    out = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    out.sort_indices()
    return out


# ----------------------------------------------------------------------
# Policy: correction with full-rebuild fallback
# ----------------------------------------------------------------------
@dataclass
class UpdateResult:
    """Outcome of :func:`build_updated_bundle`.

    ``mode`` is ``"incremental"`` (correction applied; ``incremental``
    holds the details) or ``"full"`` (re-preprocessed from scratch;
    ``error_bound`` is ``0.0``).
    """

    mode: str
    bundle: SolverArtifacts
    error_bound: float
    seconds: float
    incremental: Optional[IncrementalResult] = None


def build_updated_bundle(
    bundle: SolverArtifacts,
    new_graph: Graph,
    bound_threshold: float = 0.0,
    n_jobs: int = 1,
    force_full: bool = False,
) -> UpdateResult:
    """Updated artifacts for ``new_graph``: correction if the bound allows.

    The incremental path is attempted first (unless ``force_full``); when
    its tracked error bound exceeds ``bound_threshold`` — ``0.0`` admits
    only *exact* corrections — the graph is re-preprocessed in full with a
    solver rebuilt from the bundle's own config, which re-partitions and
    resets the bound.
    """
    started = time.perf_counter()
    if not force_full and bundle.kind == "bepi":
        result = incremental_update(
            bundle, new_graph, bound_threshold=bound_threshold, n_jobs=n_jobs
        )
        if result is not None:
            return UpdateResult(
                mode="incremental",
                bundle=result.bundle,
                error_bound=result.error_bound,
                seconds=time.perf_counter() - started,
                incremental=result,
            )
    from repro.persistence import solver_from_config

    solver = solver_from_config(bundle.config)
    solver.n_jobs = max(int(n_jobs), 1)
    solver.preprocess(new_graph)
    return UpdateResult(
        mode="full",
        bundle=solver.solver_artifacts,
        error_bound=0.0,
        seconds=time.perf_counter() - started,
    )
