"""Hub selection ratio sweep (Section 3.4, Figure 4), redundancy-free.

The number of non-zeros of the Schur complement is bounded by
``|S| <= |H22| + |H21 H11^{-1} H12|``; growing ``k`` grows ``|H22|`` but
shrinks the correction term, so there is a sweet spot (empirically
``k ~ 0.2-0.3`` in the paper).  :func:`select_hub_ratio` measures all three
quantities per candidate ``k`` and picks the minimizer — the policy that
turns BePI-B into BePI-S.

Cost model (what the refactor buys): the deadend stage is identical for
every candidate, so it runs **once** per sweep; the sparsity counts
``nnz_h22`` / ``nnz_correction`` are read out of the Schur build's
intermediates instead of re-deriving the correction product; and the
winner's full :class:`~repro.core.pipeline.PreprocessArtifacts` is returned
so ``BePI(hub_ratio="auto")`` never rebuilds it.  Auto-``k`` therefore
costs ``len(candidates)`` shared-prefix pipeline passes — down from
``len(candidates) + 1`` full passes plus ``len(candidates)`` duplicate
correction products before the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.pipeline import PreprocessArtifacts, build_artifacts, run_deadend_stage
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.parallel import resolve_n_jobs, thread_map

#: Candidate ratios used when a solver is asked to auto-select ``k``.
DEFAULT_CANDIDATES = (0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class SchurSweepRecord:
    """Measurements for one candidate hub selection ratio.

    Mirrors the series of Figure 4: ``nnz_schur`` (= ``|S|``),
    ``nnz_h22`` and ``nnz_correction`` (= ``|H21 H11^{-1} H12|``).
    """

    k: float
    n1: int
    n2: int
    n_blocks: int
    nnz_schur: int
    nnz_h22: int
    nnz_correction: int
    slashburn_iterations: int


@dataclass(frozen=True)
class HubRatioSelection:
    """Outcome of a hub-ratio sweep: the records plus the winner's artifacts.

    Attributes
    ----------
    records:
        One :class:`SchurSweepRecord` per candidate, in candidate order.
    best_index:
        Index of the ``|S|``-minimizing candidate (ties toward smaller
        ``k``).
    artifacts:
        The winner's full preprocessing artifacts — ready for a solver to
        adopt without re-running the pipeline.
    """

    records: List[SchurSweepRecord]
    best_index: int
    artifacts: PreprocessArtifacts

    @property
    def best(self) -> SchurSweepRecord:
        return self.records[self.best_index]

    @property
    def best_k(self) -> float:
        return self.records[self.best_index].k


def _record_from_artifacts(k: float, artifacts: PreprocessArtifacts) -> SchurSweepRecord:
    return SchurSweepRecord(
        k=float(k),
        n1=artifacts.n1,
        n2=artifacts.n2,
        n_blocks=artifacts.hubspoke.n_blocks,
        nnz_schur=int(artifacts.schur.nnz),
        nnz_h22=int(artifacts.nnz_h22 or 0),
        nnz_correction=int(artifacts.nnz_correction or 0),
        slashburn_iterations=artifacts.hubspoke.slashburn_iterations,
    )


def select_hub_ratio(
    graph: Graph,
    c: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    deadend_reordering: bool = True,
    hub_selection: str = "slashburn",
    n_jobs: int = 1,
    parallel_candidates: bool = False,
) -> HubRatioSelection:
    """Sweep the candidate hub ratios and keep the winner's artifacts.

    The deadend stage (identical for every ``k``) runs once; each candidate
    then pays only the ``k``-dependent pipeline suffix, and the sparsity
    counts come out of the Schur build's intermediates.

    Parameters
    ----------
    graph, c:
        The graph and restart probability.
    candidates:
        Candidate ratios; must be non-empty.
    deadend_reordering, hub_selection:
        Forwarded to :func:`~repro.core.pipeline.build_artifacts`, so the
        sweep measures exactly the configuration the solver will use.
    n_jobs:
        Worker threads for the parallel pipeline stages (``-1`` = all
        CPUs).
    parallel_candidates:
        Evaluate the independent candidates concurrently (each with serial
        inner stages) instead of sequentially with parallel inner stages.
        Results are identical either way.
    """
    if not candidates:
        raise InvalidParameterError("need at least one candidate hub ratio")
    jobs = resolve_n_jobs(n_jobs)
    stage = run_deadend_stage(graph, deadend_reordering)

    if parallel_candidates and jobs > 1 and len(candidates) > 1:
        def build(k: float) -> PreprocessArtifacts:
            return build_artifacts(
                graph, c, k,
                deadend_reordering=deadend_reordering,
                hub_selection=hub_selection,
                n_jobs=1,
                deadend_stage=stage,
            )

        artifacts_list = thread_map(build, list(candidates), jobs)
    else:
        artifacts_list = [
            build_artifacts(
                graph, c, k,
                deadend_reordering=deadend_reordering,
                hub_selection=hub_selection,
                n_jobs=jobs,
                deadend_stage=stage,
            )
            for k in candidates
        ]

    records = [
        _record_from_artifacts(k, artifacts)
        for k, artifacts in zip(candidates, artifacts_list)
    ]
    best_index = min(
        range(len(records)), key=lambda i: (records[i].nnz_schur, records[i].k)
    )
    return HubRatioSelection(
        records=records, best_index=best_index, artifacts=artifacts_list[best_index]
    )


def sweep_hub_ratios(
    graph: Graph,
    c: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    n_jobs: int = 1,
) -> List[SchurSweepRecord]:
    """Measure Schur-complement sparsity for each candidate ``k``.

    Runs the ``k``-dependent pipeline suffix per candidate on top of one
    shared deadend stage, so the sweep's cost is ``len(candidates)``
    shared-prefix preprocessing passes (no duplicated correction products).
    """
    return select_hub_ratio(graph, c, candidates, n_jobs=n_jobs).records


def choose_hub_ratio(
    graph: Graph,
    c: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
) -> float:
    """The candidate ``k`` minimizing ``|S|`` (ties toward the smaller ``k``)."""
    return select_hub_ratio(graph, c, candidates).best_k
