"""Hub selection ratio sweep (Section 3.4, Figure 4).

The number of non-zeros of the Schur complement is bounded by
``|S| <= |H22| + |H21 H11^{-1} H12|``; growing ``k`` grows ``|H22|`` but
shrinks the correction term, so there is a sweet spot (empirically
``k ~ 0.2-0.3`` in the paper).  :func:`sweep_hub_ratios` measures all three
quantities per candidate ``k`` and :func:`choose_hub_ratio` picks the
minimizer — the policy that turns BePI-B into BePI-S.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.pipeline import build_artifacts
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph

#: Candidate ratios used when a solver is asked to auto-select ``k``.
DEFAULT_CANDIDATES = (0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class SchurSweepRecord:
    """Measurements for one candidate hub selection ratio.

    Mirrors the series of Figure 4: ``nnz_schur`` (= ``|S|``),
    ``nnz_h22`` and ``nnz_correction`` (= ``|H21 H11^{-1} H12|``).
    """

    k: float
    n1: int
    n2: int
    n_blocks: int
    nnz_schur: int
    nnz_h22: int
    nnz_correction: int
    slashburn_iterations: int


def sweep_hub_ratios(
    graph: Graph,
    c: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
) -> List[SchurSweepRecord]:
    """Measure Schur-complement sparsity for each candidate ``k``.

    Runs the full Algorithm-1 pipeline (reorder, factorize, Schur) per
    candidate; this is exactly the preprocessing work, so the sweep's cost
    is ``len(candidates)`` preprocessing passes.
    """
    if not candidates:
        raise InvalidParameterError("need at least one candidate hub ratio")
    records: List[SchurSweepRecord] = []
    for k in candidates:
        artifacts = build_artifacts(graph, c, k)
        h12 = artifacts.blocks["H12"]
        h21 = artifacts.blocks["H21"]
        h22 = artifacts.blocks["H22"]
        if h12.shape[0] == 0 or h12.shape[1] == 0:
            nnz_correction = 0
        else:
            correction = h21 @ artifacts.h11_factors.solve_matrix(h12)
            correction.eliminate_zeros()
            nnz_correction = int(correction.nnz)
        records.append(
            SchurSweepRecord(
                k=float(k),
                n1=artifacts.n1,
                n2=artifacts.n2,
                n_blocks=artifacts.hubspoke.n_blocks,
                nnz_schur=int(artifacts.schur.nnz),
                nnz_h22=int(h22.nnz),
                nnz_correction=nnz_correction,
                slashburn_iterations=artifacts.hubspoke.slashburn_iterations,
            )
        )
    return records


def choose_hub_ratio(
    graph: Graph,
    c: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
) -> float:
    """The candidate ``k`` minimizing ``|S|`` (ties toward the smaller ``k``)."""
    records = sweep_hub_ratios(graph, c, candidates)
    best = min(records, key=lambda rec: (rec.nnz_schur, rec.k))
    return best.k
