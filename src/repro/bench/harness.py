"""Experiment harness: run (dataset x method) matrices and collect rows.

This is the code behind every figure/table bench: it preprocesses a solver
on a graph under memory/time budgets, times a batch of random-seed queries,
and records one :class:`ExperimentRecord` — the row format the paper's
plots are drawn from (preprocessing time, preprocessed-data memory, average
query time).

Failure semantics mirror the paper: a method that exceeds the memory budget
is recorded with status ``"oom"``; one that exceeds the preprocessing time
budget is recorded ``"oot"``; both keep the harness running so the rest of
the matrix still completes (the "missing bars" of Figure 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import RWRSolver
from repro.exceptions import (
    ConvergenceError,
    MemoryBudgetExceededError,
    ReproError,
    TimeBudgetExceededError,
)
from repro.graph.graph import Graph

SolverFactory = Callable[[], RWRSolver]


@dataclass
class ExperimentRecord:
    """One (dataset, method) measurement row.

    ``status`` is ``"ok"``, ``"oom"`` (memory budget exceeded), ``"oot"``
    (time budget exceeded) or ``"error"``; non-``ok`` rows have ``NaN``
    measurements, mirroring the omitted bars in the paper's figures.
    """

    dataset: str
    method: str
    status: str = "ok"
    preprocess_seconds: float = float("nan")
    memory_bytes: float = float("nan")
    avg_query_seconds: float = float("nan")
    avg_iterations: float = float("nan")
    total_seconds: float = float("nan")
    n_queries: int = 0
    detail: str = ""
    solver_stats: Dict = field(default_factory=dict)
    stage_seconds: Dict = field(default_factory=dict)
    #: Full metrics snapshot (repro.telemetry schema) of the solver's run:
    #: GMRES iteration/residual histograms, Algorithm 4 span timings, etc.
    telemetry: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ExperimentRunner:
    """Runs solver measurements with shared query seeds and budgets.

    Parameters
    ----------
    n_queries:
        Number of random seed nodes per query measurement (paper: 30).
    seed:
        RNG seed for choosing query nodes (shared across methods so every
        method answers the same queries).
    time_budget_seconds:
        Preprocessing budget; exceeding it marks the row ``"oot"``.  The
        check is post-hoc (pure-Python preprocessing cannot be safely
        interrupted), which is sufficient at laptop scale.
    batch_queries:
        When true (the default) the query phase runs as one
        :meth:`RWRSolver.query_many_detailed` call, exercising each
        solver's batched path; set to false to time seeds one
        ``query_detailed`` at a time (the paper's per-query protocol).
    """

    def __init__(
        self,
        n_queries: int = 30,
        seed: int = 0,
        time_budget_seconds: Optional[float] = None,
        batch_queries: bool = True,
    ):
        self.n_queries = n_queries
        self.seed = seed
        self.time_budget_seconds = time_budget_seconds
        self.batch_queries = batch_queries

    def query_seeds(self, graph: Graph) -> np.ndarray:
        """The shared random query nodes for ``graph``."""
        rng = np.random.default_rng(self.seed)
        n = graph.n_nodes
        size = min(self.n_queries, n)
        return rng.choice(n, size=size, replace=False)

    def run(
        self,
        dataset: str,
        graph: Graph,
        factory: SolverFactory,
        method_name: Optional[str] = None,
    ) -> ExperimentRecord:
        """Measure one method on one graph.

        Parameters
        ----------
        dataset:
            Label recorded in the row.
        graph:
            The graph to preprocess and query.
        factory:
            Zero-argument callable building a fresh solver.
        method_name:
            Override for the row's method label (default: the solver's
            ``name``).
        """
        solver = factory()
        record = ExperimentRecord(dataset=dataset, method=method_name or solver.name)
        try:
            start = time.perf_counter()
            solver.preprocess(graph)
            preprocess_seconds = time.perf_counter() - start
            if (
                self.time_budget_seconds is not None
                and preprocess_seconds > self.time_budget_seconds
            ):
                raise TimeBudgetExceededError(
                    f"preprocessing took {preprocess_seconds:.1f}s "
                    f"(budget {self.time_budget_seconds:.1f}s)",
                    elapsed_seconds=preprocess_seconds,
                    budget_seconds=self.time_budget_seconds,
                )
        except MemoryBudgetExceededError as exc:
            record.status = "oom"
            record.detail = str(exc)
            return record
        except TimeBudgetExceededError as exc:
            record.status = "oot"
            record.detail = str(exc)
            return record
        except ReproError as exc:
            record.status = "error"
            record.detail = str(exc)
            return record

        seeds = self.query_seeds(graph)
        try:
            if self.batch_queries:
                batch = solver.query_many_detailed(seeds)
                query_seconds = batch.per_seed_seconds.tolist()
                iterations = batch.iterations.tolist()
            else:
                query_seconds = []
                iterations = []
                for node in seeds:
                    result = solver.query_detailed(int(node))
                    query_seconds.append(result.seconds)
                    iterations.append(result.iterations)
        except (ConvergenceError, ReproError) as exc:
            record.status = "error"
            record.detail = f"query failed: {exc}"
            return record

        record.preprocess_seconds = preprocess_seconds
        record.memory_bytes = float(solver.memory_bytes())
        record.avg_query_seconds = float(np.mean(query_seconds))
        record.avg_iterations = float(np.mean(iterations))
        record.total_seconds = preprocess_seconds + float(np.sum(query_seconds))
        record.n_queries = len(seeds)
        record.solver_stats = dict(solver.stats)
        record.stage_seconds = dict(solver.stats.get("stage_timings", {}))
        record.telemetry = solver.telemetry.snapshot()
        return record

    def run_matrix(
        self,
        datasets: Sequence[Union[str, "tuple[str, Graph]"]],
        factories: Dict[str, SolverFactory],
        graphs: Optional[Dict[str, Graph]] = None,
    ) -> List[ExperimentRecord]:
        """Run every method on every dataset.

        ``datasets`` entries are either registry names (resolved through
        :func:`repro.datasets.build`) or ``(label, graph)`` pairs.
        """
        from repro.datasets import build as build_dataset

        records: List[ExperimentRecord] = []
        for entry in datasets:
            if isinstance(entry, tuple):
                label, graph = entry
            else:
                label = entry
                graph = (graphs or {}).get(label) or build_dataset(label)
            for method, factory in factories.items():
                records.append(self.run(label, graph, factory, method_name=method))
        return records


def format_records(records: Sequence[ExperimentRecord]) -> str:
    """Human-readable table of experiment rows (used by the benches' output)."""
    header = (
        f"{'dataset':<18} {'method':<10} {'status':<6} "
        f"{'preproc(s)':>10} {'memory(MB)':>10} {'query(ms)':>10} {'iters':>7}"
    )
    lines = [header, "-" * len(header)]
    for rec in records:
        mem_mb = rec.memory_bytes / 1e6 if rec.memory_bytes == rec.memory_bytes else float("nan")
        lines.append(
            f"{rec.dataset:<18} {rec.method:<10} {rec.status:<6} "
            f"{rec.preprocess_seconds:>10.3f} {mem_mb:>10.2f} "
            f"{rec.avg_query_seconds * 1e3:>10.2f} {rec.avg_iterations:>7.1f}"
        )
    return "\n".join(lines)
