"""Byte accounting for preprocessed data, and memory budgets.

The paper reports "memory space for preprocessed data" (Figure 1b) as the
size of the matrices each method must keep around for the query phase,
stored in a compressed sparse format.  We use the same convention:

- sparse matrix: 8 bytes per non-zero value + 4 bytes per non-zero index
  + 4 bytes per row/column pointer (compressed column storage, as in the
  paper's Section 3.1),
- dense matrix: 8 bytes per entry.

:class:`MemoryBudget` emulates the machine limit: preprocessing that would
retain more than the budget raises
:class:`~repro.exceptions.MemoryBudgetExceededError`, reproducing the
missing bars of Figure 1 without actually exhausting RAM.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Union

try:  # the resource module is POSIX-only (absent on Windows)
    import resource
except ImportError:  # pragma: no cover - exercised only off-POSIX
    resource = None  # type: ignore[assignment]

import numpy as np
import scipy.sparse as sp

from repro.exceptions import MemoryBudgetExceededError

_VALUE_BYTES = 8
_INDEX_BYTES = 4
_POINTER_BYTES = 4

MatrixLike = Union[sp.spmatrix, np.ndarray]


def sparse_memory_bytes(matrix: sp.spmatrix) -> int:
    """Bytes to store a sparse matrix in compressed row/column format."""
    # Pointer array length is dim + 1; a storage-conscious implementation
    # picks the cheaper of the CSR/CSC orientations.
    n_pointers = min(matrix.shape[0], matrix.shape[1]) + 1
    return int(
        matrix.nnz * (_VALUE_BYTES + _INDEX_BYTES) + n_pointers * _POINTER_BYTES
    )


def dense_memory_bytes(shape: Iterable[int]) -> int:
    """Bytes to store a dense float64 matrix of the given shape."""
    total = 1
    for dim in shape:
        total *= int(dim)
    return total * _VALUE_BYTES


def matrix_memory_bytes(matrix: MatrixLike) -> int:
    """Bytes for either a sparse or a dense matrix."""
    if sp.issparse(matrix):
        return sparse_memory_bytes(matrix)
    return dense_memory_bytes(np.asarray(matrix).shape)


def process_rss_bytes() -> Optional[int]:
    """Resident set size of the calling process in bytes, or ``None``.

    Reads ``/proc/self/statm`` where available (Linux); falls back to the
    peak RSS reported by ``getrusage`` elsewhere, and returns ``None`` on
    platforms where neither works (callers must exclude ``None`` from
    aggregation rather than crash).  Used by the serving benchmark to show
    that mmap-backed workers share artifact pages instead of each holding a
    private copy.
    """
    try:
        with open("/proc/self/statm") as statm:
            resident_pages = int(statm.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    if resource is None:
        return None
    try:
        # ru_maxrss is kilobytes on Linux, bytes on macOS; this branch only
        # runs off-Linux, where the bytes interpretation is the right one
        # for Darwin and a safe overestimate elsewhere.
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (OSError, ValueError):  # pragma: no cover - platform-specific
        return None


class MemoryBudget:
    """A byte budget for preprocessed data.

    Parameters
    ----------
    limit_bytes:
        Maximum bytes of preprocessed data a method may retain, or ``None``
        for unlimited.

    Examples
    --------
    >>> budget = MemoryBudget(limit_bytes=1024)
    >>> budget.check(512, what="Schur complement")
    >>> budget.check(4096, what="dense inverse")
    Traceback (most recent call last):
        ...
    repro.exceptions.MemoryBudgetExceededError: ...
    """

    def __init__(self, limit_bytes: Optional[int] = None):
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive or None, got {limit_bytes}")
        self.limit_bytes = limit_bytes

    def check(self, required_bytes: int, what: str = "preprocessed data") -> None:
        """Raise if ``required_bytes`` exceeds the budget."""
        if self.limit_bytes is not None and required_bytes > self.limit_bytes:
            raise MemoryBudgetExceededError(
                f"{what} needs {required_bytes:,} bytes but the budget is "
                f"{self.limit_bytes:,} bytes",
                required_bytes=required_bytes,
                budget_bytes=self.limit_bytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.limit_bytes is None:
            return "MemoryBudget(unlimited)"
        return f"MemoryBudget(limit_bytes={self.limit_bytes:,})"
