"""Benchmark support: memory accounting, budgets, and the experiment harness.

The paper's evaluation compares methods on three axes — preprocessing time,
memory for preprocessed data, and query time — under a machine memory limit
and a 24-hour preprocessing time limit.  This subpackage provides the
laptop-scale equivalents:

- :mod:`repro.bench.memory` — byte accounting of preprocessed sparse/dense
  matrices, and :class:`~repro.bench.memory.MemoryBudget` which makes
  over-budget methods fail fast ("o.o.m." bars in Figure 1),
- :mod:`repro.bench.harness` — runs a (dataset x method) experiment matrix
  and collects the rows the benchmark suite prints.
"""

from repro.bench.harness import ExperimentRecord, ExperimentRunner
from repro.bench.memory import MemoryBudget, dense_memory_bytes, sparse_memory_bytes
from repro.bench.profile import format_preprocess_profile
from repro.bench.spy import block_diagonal_fraction, density_grid, spy_text

__all__ = [
    "ExperimentRecord",
    "ExperimentRunner",
    "MemoryBudget",
    "block_diagonal_fraction",
    "dense_memory_bytes",
    "density_grid",
    "format_preprocess_profile",
    "sparse_memory_bytes",
    "spy_text",
]
