"""Human-readable breakdowns of a solver's preprocessing cost.

Theorem 1 decomposes BePI's preprocessing into SlashBurn rounds, the
block-diagonal factorization, the Schur complement and the ILU step; this
module renders the measured per-stage timings next to the structural
quantities each stage's complexity depends on, so users can see *where*
their graph spends preprocessing time.
"""

from __future__ import annotations

from typing import List

from repro.core.base import RWRSolver
from repro.exceptions import NotPreprocessedError

#: Display order and labels for the pipeline stages.
_STAGE_LABELS = (
    ("deadend_reorder", "deadend reordering"),
    ("hub_and_spoke_reorder", "SlashBurn + partition"),
    ("build_and_partition_h", "H assembly + blocks"),
    ("factorize_h11", "H11 block LU inverse"),
    ("schur_complement", "Schur complement S"),
)


def format_preprocess_profile(solver: RWRSolver) -> str:
    """A text table of the solver's preprocessing stage timings.

    Works with any solver exposing ``stats['stage_timings']`` (the BePI
    family and Bear); other solvers get the total only.

    Raises
    ------
    NotPreprocessedError
        If the solver has not been preprocessed.
    """
    if not solver.is_preprocessed:
        raise NotPreprocessedError("preprocess() the solver before profiling it")
    stats = solver.stats
    total = float(stats.get("preprocess_seconds", 0.0))
    lines: List[str] = [
        f"{solver.name} preprocessing profile "
        f"({solver.graph.n_nodes:,} nodes, {solver.graph.n_edges:,} edges)",
        f"{'stage':<24} {'seconds':>9} {'share':>7}",
    ]
    stage_timings = stats.get("stage_timings", {})
    accounted = 0.0
    for key, label in _STAGE_LABELS:
        if key not in stage_timings:
            continue
        seconds = float(stage_timings[key])
        accounted += seconds
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{label:<24} {seconds:>9.4f} {share:>6.1%}")
    for key, label in (("ilu_seconds", "ILU preconditioner"),
                       ("invert_schur_seconds", "dense S^-1 (Bear)"),
                       ("hub_ratio_sweep_seconds", "hub-ratio sweep")):
        seconds = float(stats.get(key, 0.0))
        if seconds > 0.0:
            accounted += seconds
            share = seconds / total if total > 0 else 0.0
            lines.append(f"{label:<24} {seconds:>9.4f} {share:>6.1%}")
    other = max(total - accounted, 0.0)
    if total > 0 and other / total > 0.01:
        lines.append(f"{'(other)':<24} {other:>9.4f} {other / total:>6.1%}")
    lines.append(f"{'total':<24} {total:>9.4f} {'100.0%':>7}")

    structure = []
    for key, label in (("n1", "n1 spokes"), ("n2", "n2 hubs"),
                       ("n3", "n3 deadends"), ("n_blocks", "H11 blocks"),
                       ("nnz_schur", "|S|"),
                       ("slashburn_iterations", "SlashBurn rounds")):
        if key in stats:
            structure.append(f"{label} = {stats[key]:,}")
    if structure:
        lines.append("structure: " + ", ".join(structure))
    return "\n".join(lines)
