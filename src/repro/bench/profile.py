"""Human-readable breakdowns of a solver's preprocessing cost.

Theorem 1 decomposes BePI's preprocessing into SlashBurn rounds, the
block-diagonal factorization, the Schur complement and the ILU step; this
module renders the measured per-stage timings next to the structural
quantities each stage's complexity depends on, so users can see *where*
their graph spends preprocessing time.
"""

from __future__ import annotations

from typing import List

from repro.core.base import RWRSolver
from repro.exceptions import NotPreprocessedError

#: Display order and labels for the pipeline stages.
_STAGE_LABELS = (
    ("deadend_reorder", "deadend reordering"),
    ("hub_and_spoke_reorder", "SlashBurn + partition"),
    ("build_and_partition_h", "H assembly + blocks"),
    ("factorize_h11", "H11 block LU inverse"),
    ("schur_complement", "Schur complement S"),
)

#: Display order and labels for the Algorithm 4 query-phase spans
#: (histograms named ``<span>.seconds`` in the solver's telemetry registry).
_QUERY_SPAN_LABELS = (
    ("query.partition", "q partition (line 2)"),
    ("query.h11_solves", "H11 solves (lines 3+5)"),
    ("query.schur", "Schur GMRES (line 4)"),
    ("query.backsub", "back-substitution"),
    ("query.lu_solve", "LU solve"),
)


def format_preprocess_profile(solver: RWRSolver) -> str:
    """A text table of the solver's preprocessing stage timings.

    Works with any solver exposing ``stats['stage_timings']`` (the BePI
    family and Bear); other solvers get the total only.

    Raises
    ------
    NotPreprocessedError
        If the solver has not been preprocessed.
    """
    if not solver.is_preprocessed:
        raise NotPreprocessedError("preprocess() the solver before profiling it")
    stats = solver.stats
    total = float(stats.get("preprocess_seconds", 0.0))
    lines: List[str] = [
        f"{solver.name} preprocessing profile "
        f"({solver.graph.n_nodes:,} nodes, {solver.graph.n_edges:,} edges)",
        f"{'stage':<24} {'seconds':>9} {'share':>7}",
    ]
    stage_timings = stats.get("stage_timings", {})
    accounted = 0.0
    for key, label in _STAGE_LABELS:
        if key not in stage_timings:
            continue
        seconds = float(stage_timings[key])
        accounted += seconds
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{label:<24} {seconds:>9.4f} {share:>6.1%}")
    for key, label in (("ilu_seconds", "ILU preconditioner"),
                       ("invert_schur_seconds", "dense S^-1 (Bear)"),
                       ("hub_ratio_sweep_seconds", "hub-ratio sweep")):
        seconds = float(stats.get(key, 0.0))
        if seconds > 0.0:
            accounted += seconds
            share = seconds / total if total > 0 else 0.0
            lines.append(f"{label:<24} {seconds:>9.4f} {share:>6.1%}")
    other = max(total - accounted, 0.0)
    if total > 0 and other / total > 0.01:
        lines.append(f"{'(other)':<24} {other:>9.4f} {other / total:>6.1%}")
    lines.append(f"{'total':<24} {total:>9.4f} {'100.0%':>7}")

    structure = []
    for key, label in (("n1", "n1 spokes"), ("n2", "n2 hubs"),
                       ("n3", "n3 deadends"), ("n_blocks", "H11 blocks"),
                       ("nnz_schur", "|S|"),
                       ("slashburn_iterations", "SlashBurn rounds")):
        if key in stats:
            structure.append(f"{label} = {stats[key]:,}")
    if structure:
        lines.append("structure: " + ", ".join(structure))
    lines.extend(_query_phase_lines(solver))
    return "\n".join(lines)


def _query_phase_lines(solver: RWRSolver) -> List[str]:
    """Algorithm 4 step timings from the solver's telemetry spans.

    Empty until the solver has answered queries (the spans are recorded at
    query time); this is the serve-cost half of the Fig. 12 build/serve
    split.  Shares are deliberately omitted (spans overlap GMRES-internal
    time, so they would not sum to a meaningful total).
    """
    registry = getattr(solver, "telemetry", None)
    if registry is None:
        return []
    rows = []
    for span_name, label in _QUERY_SPAN_LABELS:
        histogram = registry.get(f"{span_name}.seconds")
        if histogram is None or histogram.count == 0:
            continue
        rows.append((label, histogram))
    if not rows:
        return []
    lines = [
        "",
        "query phase (Algorithm 4 spans)",
        f"{'step':<24} {'calls':>7} {'total s':>9} {'mean s':>9} {'p95 s':>9}",
    ]
    for label, histogram in rows:
        summary = histogram.summary()
        lines.append(
            f"{label:<24} {histogram.count:>7d} {summary['sum']:>9.4f} "
            f"{summary['mean']:>9.6f} {summary['p95']:>9.6f}"
        )
    return lines
