"""Text-mode matrix structure plots ("spy" plots, Figure 3 of the paper).

The paper's Figure 3 shows how deadend and hub-and-spoke reordering
concentrate the non-zeros of ``H``.  These helpers render the same view in
a terminal: the matrix is divided into a grid of cells and each cell's
non-zero density maps to a shade character.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidParameterError

#: Shade ramp from empty to dense.
DEFAULT_SHADES = " .:+*#@"


def density_grid(matrix: sp.spmatrix, rows: int = 32, cols: int = 32) -> np.ndarray:
    """Fraction of stored non-zeros per grid cell.

    Returns a ``(rows, cols)`` float array; entry ``(i, j)`` is the count
    of non-zeros whose position falls into that cell, divided by the
    cell's area — i.e. the local density in ``[0, 1]`` for 0/1 matrices.
    """
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid must have at least one row and column")
    coo = sp.coo_matrix(matrix)
    n_rows, n_cols = coo.shape
    if n_rows == 0 or n_cols == 0:
        return np.zeros((rows, cols))
    grid_rows = np.minimum((coo.row * rows) // max(n_rows, 1), rows - 1)
    grid_cols = np.minimum((coo.col * cols) // max(n_cols, 1), cols - 1)
    counts = np.zeros((rows, cols), dtype=np.float64)
    np.add.at(counts, (grid_rows, grid_cols), 1.0)
    cell_area = (n_rows / rows) * (n_cols / cols)
    return counts / max(cell_area, 1.0)


def spy_text(
    matrix: sp.spmatrix,
    rows: int = 32,
    cols: int = 64,
    shades: str = DEFAULT_SHADES,
) -> str:
    """Render a matrix's sparsity structure as shaded text.

    Shading is log-scaled relative to the densest cell, so hub rows do not
    wash out the fine block structure the reorderings create.
    """
    if len(shades) < 2:
        raise InvalidParameterError("need at least two shade characters")
    grid = density_grid(matrix, rows, cols)
    peak = grid.max()
    if peak == 0.0:
        return "\n".join(shades[0] * cols for _ in range(rows))
    # Log scaling: map densities (0, peak] onto shade indices 1..max.
    with np.errstate(divide="ignore"):
        scaled = np.log1p(grid / peak * 100.0) / np.log1p(100.0)
    indices = np.ceil(scaled * (len(shades) - 1)).astype(int)
    indices = np.clip(indices, 0, len(shades) - 1)
    indices[grid == 0.0] = 0
    return "\n".join("".join(shades[i] for i in row) for row in indices)


def block_diagonal_fraction(matrix: sp.spmatrix, block_sizes) -> float:
    """Fraction of non-zeros lying inside the declared diagonal blocks.

    1.0 means perfectly block diagonal — the property the hub-and-spoke
    reordering guarantees for ``H11`` (Fig. 3d).
    """
    csr = sp.csr_matrix(matrix)
    if csr.nnz == 0:
        return 1.0
    starts = np.concatenate(([0], np.cumsum(np.asarray(block_sizes, dtype=np.int64))))
    coo = csr.tocoo()
    row_block = np.searchsorted(starts, coo.row, side="right") - 1
    col_block = np.searchsorted(starts, coo.col, side="right") - 1
    return float(np.mean(row_block == col_block))


def bandwidth_profile(matrix: sp.spmatrix) -> float:
    """Mean normalized distance of non-zeros from the diagonal.

    0 means everything on the diagonal; 1/3 is the expectation for
    uniformly scattered entries.  Reorderings that concentrate entries
    reduce this number.
    """
    coo = sp.coo_matrix(matrix)
    n = max(coo.shape)
    if coo.nnz == 0 or n <= 1:
        return 0.0
    return float(np.mean(np.abs(coo.row - coo.col)) / (n - 1))
