"""Generation-based artifact store with atomic publication.

A serving deployment needs two things the raw artifact directory
(:func:`repro.persistence.save_artifacts`) does not provide on its own:

- **history** — each rebuild of an evolving graph produces a new artifact
  bundle, and workers holding the old one must keep working until they
  re-open;
- **atomic switchover** — a reader must never observe a half-written
  bundle.

:class:`ArtifactStore` provides both with plain filesystem primitives::

    <root>/
        generations/
            gen-000001/        complete artifact directory (format v3)
            gen-000002/
        current -> generations/gen-000002

:meth:`ArtifactStore.publish` writes the new generation into a hidden
staging directory (``generations/.incoming-*``), where the manifest is the
last file written, then ``os.rename``\\ s it to its final name — so a
``gen-*`` directory either does not exist or is complete.  The ``current``
pointer is then swapped with ``os.replace`` of a freshly created symlink
(or, on filesystems without symlink support, of a one-line ``CURRENT``
text file).  Readers that resolve ``current`` therefore always land on a
fully published generation; readers that already opened the previous one
keep their memory maps alive regardless of what the pointer does.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import List, Optional, Union

from repro.core.bepi import BePI
from repro.core.engine import SolverArtifacts
from repro.exceptions import GraphFormatError
from repro.persistence import PathLike, load_artifacts, save_artifacts

_GENERATIONS_DIR = "generations"
_CURRENT_LINK = "current"
_CURRENT_FILE = "CURRENT"
_GENERATION_RE = re.compile(r"^gen-(\d{6})$")


class ArtifactStore:
    """A directory of artifact generations with an atomic ``current`` pointer.

    Parameters
    ----------
    root:
        Store root directory; created (with the ``generations/``
        subdirectory) if missing.

    Examples
    --------
    >>> from repro import BePI, generate_rmat
    >>> from repro.store import ArtifactStore
    >>> import tempfile
    >>> solver = BePI(hub_ratio=0.3).preprocess(generate_rmat(6, 150, seed=1))
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     store = ArtifactStore(tmp)
    ...     path = store.publish(solver)
    ...     store.generations()
    ['gen-000001']
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.generations_dir = self.root / _GENERATIONS_DIR
        self.generations_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def publish(self, source: Union[BePI, SolverArtifacts]) -> Path:
        """Write ``source`` as the next generation and point ``current`` at it.

        The new generation becomes visible to readers only once it is
        complete; the returned path is the final ``gen-*`` directory.
        """
        index = self._next_index()
        name = f"gen-{index:06d}"
        staging = self.generations_dir / f".incoming-{os.getpid()}-{name}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            save_artifacts(source, staging)
            final = self.generations_dir / name
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._set_current(name)
        return final

    def prune(self, keep: int = 2) -> List[str]:
        """Delete all but the newest ``keep`` generations; returns the names
        removed.  The current generation is never deleted."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        current = self.current_path()
        current_name = current.name if current is not None else None
        removed = []
        for name in self.generations()[:-keep]:
            if name == current_name:
                continue
            shutil.rmtree(self.generations_dir / name)
            removed.append(name)
        return removed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def generations(self) -> List[str]:
        """Names of all complete generations, oldest first."""
        names = [
            entry.name
            for entry in self.generations_dir.iterdir()
            if entry.is_dir() and _GENERATION_RE.match(entry.name)
        ]
        return sorted(names)

    def current_path(self) -> Optional[Path]:
        """Directory of the current generation, or ``None`` before the first
        publish."""
        link = self.root / _CURRENT_LINK
        if link.is_symlink() or link.exists():
            target = link.resolve()
            if target.is_dir():
                return target
        marker = self.root / _CURRENT_FILE
        if marker.is_file():
            target = self.generations_dir / marker.read_text().strip()
            if target.is_dir():
                return target
        return None

    def open_current(self, mmap: bool = True) -> SolverArtifacts:
        """Load the current generation (see
        :func:`repro.persistence.load_artifacts`)."""
        current = self.current_path()
        if current is None:
            raise GraphFormatError(f"{self.root}: store has no published generation")
        return load_artifacts(current, mmap=mmap)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_index(self) -> int:
        names = self.generations()
        if not names:
            return 1
        match = _GENERATION_RE.match(names[-1])
        assert match is not None
        return int(match.group(1)) + 1

    def _set_current(self, name: str) -> None:
        target = os.path.join(_GENERATIONS_DIR, name)
        link = self.root / _CURRENT_LINK
        staged = self.root / f".current-{os.getpid()}"
        try:
            if staged.is_symlink() or staged.exists():
                staged.unlink()
            os.symlink(target, staged)
            os.replace(staged, link)
        except OSError:
            # Filesystem without symlinks: fall back to an atomically
            # replaced one-line marker file.
            staged.unlink(missing_ok=True)
            marker_tmp = self.root / f".{_CURRENT_FILE}-{os.getpid()}"
            marker_tmp.write_text(name + "\n")
            os.replace(marker_tmp, self.root / _CURRENT_FILE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        current = self.current_path()
        return (
            f"ArtifactStore(root={str(self.root)!r}, "
            f"generations={len(self.generations())}, "
            f"current={current.name if current else None})"
        )
