"""Generation-based artifact store with atomic publication.

A serving deployment needs two things the raw artifact directory
(:func:`repro.persistence.save_artifacts`) does not provide on its own:

- **history** — each rebuild of an evolving graph produces a new artifact
  bundle, and workers holding the old one must keep working until they
  re-open;
- **atomic switchover** — a reader must never observe a half-written
  bundle.

:class:`ArtifactStore` provides both with plain filesystem primitives::

    <root>/
        generations/
            gen-000001/        complete artifact directory (format v3)
            gen-000002/
        current -> generations/gen-000002

:meth:`ArtifactStore.publish` writes the new generation into a hidden
staging directory (``generations/.incoming-*``), where the manifest is the
last file written, then ``os.rename``\\ s it to its final name — so a
``gen-*`` directory either does not exist or is complete.  The ``current``
pointer is then swapped with ``os.replace`` of a freshly created symlink
(or, on filesystems without symlink support, of a one-line ``CURRENT``
text file).  Readers that resolve ``current`` therefore always land on a
fully published generation; readers that already opened the previous one
keep their memory maps alive regardless of what the pointer does.

Corruption recovery
-------------------
Publication guards against *partial* writes, not against bytes rotting
after the fact (disk faults, truncating copies, operator accidents).  The
manifest's per-array SHA-256 checksums (format v4) catch those at open
time, and :meth:`ArtifactStore.open_current` recovers: a generation that
fails verification is moved into ``<root>/quarantine/`` — preserved for
forensics, never served again — the ``current`` pointer is rolled back to
the newest remaining generation, and the open is retried.  Serving workers
therefore survive a corrupted deploy by transparently falling back to the
last good build.
"""

from __future__ import annotations

import os
import re
import shutil
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.core.bepi import BePI
from repro.core.engine import SolverArtifacts
from repro.exceptions import ArtifactIntegrityError, GraphFormatError
from repro.persistence import PathLike, load_artifacts, read_manifest, save_artifacts

_GENERATIONS_DIR = "generations"
_QUARANTINE_DIR = "quarantine"
_LEASES_DIR = "leases"
_CURRENT_LINK = "current"
_CURRENT_FILE = "CURRENT"
_GENERATION_RE = re.compile(r"^gen-(\d{6})$")
_LEASE_RE = re.compile(r"^(gen-\d{6})\.(\d+)-[0-9a-f]+\.lease$")


class GenerationLease:
    """A liveness-scoped pin on one generation (see
    :meth:`ArtifactStore.acquire_lease`).

    The lease is a marker file under ``<root>/leases/`` whose name embeds
    the holder's pid; :meth:`ArtifactStore.prune` refuses to delete a
    leased generation while that pid is alive, and garbage-collects the
    marker once it is not (a crashed holder cannot pin a generation
    forever).  Usable as a context manager; :meth:`release` is idempotent.
    """

    def __init__(self, generation: str, path: Path):
        self.generation = generation
        self.path = path

    def release(self) -> None:
        self.path.unlink(missing_ok=True)

    def __enter__(self) -> "GenerationLease":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GenerationLease({self.generation!r})"


class PruneResult(List[str]):
    """Names removed by :meth:`ArtifactStore.prune`; behaves as that list
    (back-compat), with the protected-but-expired names on ``skipped``."""

    def __init__(self, removed: List[str], skipped: List[str]):
        super().__init__(removed)
        self.skipped = list(skipped)


class ArtifactStore:
    """A directory of artifact generations with an atomic ``current`` pointer.

    Parameters
    ----------
    root:
        Store root directory; created (with the ``generations/``
        subdirectory) if missing.

    Examples
    --------
    >>> from repro import BePI, generate_rmat
    >>> from repro.store import ArtifactStore
    >>> import tempfile
    >>> solver = BePI(hub_ratio=0.3).preprocess(generate_rmat(6, 150, seed=1))
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     store = ArtifactStore(tmp)
    ...     path = store.publish(solver)
    ...     store.generations()
    ['gen-000001']
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.generations_dir = self.root / _GENERATIONS_DIR
        self.generations_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def publish(
        self,
        source: Union[BePI, SolverArtifacts],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write ``source`` as the next generation and point ``current`` at it.

        The new generation becomes visible to readers only once it is
        complete; the returned path is the final ``gen-*`` directory.
        ``metadata`` (JSON-serializable) is recorded as the manifest's
        ``"lineage"`` — the dynamic-update pipeline writes the parent
        generation, update-batch digest, error bound, and rebuild mode
        there (see :meth:`lineage`).
        """
        index = self._next_index()
        name = f"gen-{index:06d}"
        staging = self.generations_dir / f".incoming-{os.getpid()}-{name}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            save_artifacts(source, staging, metadata=metadata)
            final = self.generations_dir / name
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._set_current(name)
        return final

    def prune(self, keep: int = 2) -> PruneResult:
        """Delete all but the newest ``keep`` generations.

        Returns the removed names (as a list, back-compat); the result's
        ``.skipped`` attribute names the expired generations that were
        *protected* instead of deleted.  Two kinds of generations are
        never removed: the one ``current`` points at (deleting it would
        leave the pointer dangling) and any generation pinned by a live
        lease (:meth:`acquire_lease`) — a serving pool mid-reopen holds
        one, so its memory-mapped arrays cannot vanish underneath it.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        current = self.current_path()
        current_name = current.name if current is not None else None
        leased = self.leased_generations()
        removed: List[str] = []
        skipped: List[str] = []
        for name in self.generations()[:-keep]:
            if name == current_name or name in leased:
                skipped.append(name)
                continue
            shutil.rmtree(self.generations_dir / name)
            removed.append(name)
        return PruneResult(removed, skipped)

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def acquire_lease(self, name: Optional[str] = None) -> GenerationLease:
        """Pin generation ``name`` (default: current) against pruning.

        Returns a :class:`GenerationLease`; release it (or let its holder
        process exit — dead holders are garbage-collected) to make the
        generation prunable again.  Raises
        :class:`~repro.exceptions.GraphFormatError` when the generation
        does not exist.
        """
        if name is None:
            current = self.current_path()
            if current is None:
                raise GraphFormatError(
                    f"{self.root}: store has no published generation"
                )
            name = current.name
        if not (self.generations_dir / name).is_dir():
            raise GraphFormatError(f"{self.root}: no generation {name!r}")
        leases_dir = self.root / _LEASES_DIR
        leases_dir.mkdir(parents=True, exist_ok=True)
        path = leases_dir / f"{name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.lease"
        path.write_text(f"{os.getpid()}\n")
        return GenerationLease(name, path)

    def leased_generations(self) -> Set[str]:
        """Generation names pinned by a lease whose holder is still alive.

        Stale leases — marker files whose embedded pid no longer exists —
        are unlinked as they are discovered, so a crashed pool cannot pin
        a generation forever.
        """
        leases_dir = self.root / _LEASES_DIR
        if not leases_dir.is_dir():
            return set()
        leased: Set[str] = set()
        for entry in leases_dir.iterdir():
            match = _LEASE_RE.match(entry.name)
            if match is None:
                continue
            name, pid = match.group(1), int(match.group(2))
            if _pid_alive(pid):
                leased.add(name)
            else:
                entry.unlink(missing_ok=True)
        return leased

    # ------------------------------------------------------------------
    # Lineage
    # ------------------------------------------------------------------
    def lineage(self, name: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """The ``"lineage"`` metadata of generation ``name`` (default:
        current): parent generation, update-batch digest, error bound, and
        rebuild mode as written by the dynamic-update pipeline.  ``None``
        for generations published outside that pipeline."""
        if name is None:
            current = self.current_path()
            if current is None:
                return None
            name = current.name
        target = self.generations_dir / name
        if not target.is_dir():
            raise GraphFormatError(f"{self.root}: no generation {name!r}")
        return read_manifest(target).get("lineage")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def generations(self) -> List[str]:
        """Names of all complete generations, oldest first."""
        names = [
            entry.name
            for entry in self.generations_dir.iterdir()
            if entry.is_dir() and _GENERATION_RE.match(entry.name)
        ]
        return sorted(names)

    def current_path(self) -> Optional[Path]:
        """Directory of the current generation, or ``None`` before the first
        publish."""
        link = self.root / _CURRENT_LINK
        if link.is_symlink() or link.exists():
            target = link.resolve()
            if target.is_dir():
                return target
        marker = self.root / _CURRENT_FILE
        if marker.is_file():
            target = self.generations_dir / marker.read_text().strip()
            if target.is_dir():
                return target
        return None

    def open_current(
        self, mmap: bool = True, verify: bool = True, recover: bool = True
    ) -> SolverArtifacts:
        """Load the current generation (see
        :func:`repro.persistence.load_artifacts`).

        With ``recover=True`` (default) a generation that fails checksum
        verification is quarantined, ``current`` is rolled back to the
        newest remaining generation, and the open retries — so a corrupt
        deploy degrades to serving the previous build instead of failing.
        With ``recover=False`` the :class:`ArtifactIntegrityError`
        propagates untouched (useful for health checks that must *report*
        corruption rather than paper over it).
        """
        # Bounded: each failed attempt removes one generation from the
        # store, so the loop ends even if every generation is corrupt.
        for _ in range(max(len(self.generations()), 1) + 1):
            current = self.current_path()
            if current is None:
                # A dangling pointer (e.g. its target was quarantined by a
                # concurrent worker) falls back to the newest survivor.
                names = self.generations()
                if not names:
                    break
                current = self.generations_dir / names[-1]
            try:
                return load_artifacts(current, mmap=mmap, verify=verify)
            except ArtifactIntegrityError:
                if not recover:
                    raise
                self.quarantine(current.name)
            except (FileNotFoundError, GraphFormatError):
                # The generation vanished mid-load (arrays gone, or the
                # manifest missing from a directory that no longer exists):
                # a concurrent worker detected the corruption first,
                # quarantined it, and rolled ``current`` back.  Re-resolve
                # and retry — but a directory still present is genuinely
                # malformed, not raced away.
                if current.is_dir():
                    raise
                continue
        raise GraphFormatError(f"{self.root}: store has no published generation")

    # ------------------------------------------------------------------
    # Corruption handling
    # ------------------------------------------------------------------
    def quarantine(self, name: str) -> Optional[Path]:
        """Move generation ``name`` into ``<root>/quarantine/`` and repoint
        ``current`` at the newest remaining generation.

        Returns the quarantine destination, or ``None`` when the
        generation was already gone (another process won the race —
        ``current`` is still repointed so this process stops resolving to
        the vanished directory).  The corrupt bytes are preserved, not
        deleted, so the failure can be diagnosed later.
        """
        source = self.generations_dir / name
        quarantine_dir = self.root / _QUARANTINE_DIR
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination: Optional[Path] = quarantine_dir / name
        suffix = 1
        while destination.exists():
            destination = quarantine_dir / f"{name}.{suffix}"
            suffix += 1
        try:
            os.rename(source, destination)
        except FileNotFoundError:
            destination = None
        self._rollback()
        return destination

    def _rollback(self) -> None:
        """Point ``current`` at the newest remaining generation (or drop the
        pointer entirely when none are left)."""
        names = self.generations()
        if names:
            self._set_current(names[-1])
            return
        (self.root / _CURRENT_LINK).unlink(missing_ok=True)
        (self.root / _CURRENT_FILE).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_index(self) -> int:
        indices = [0]
        for name in self.generations():
            match = _GENERATION_RE.match(name)
            assert match is not None
            indices.append(int(match.group(1)))
        # Quarantined generations keep their index reserved so a rebuild
        # after a corruption event cannot collide with the forensic copy.
        quarantine_dir = self.root / _QUARANTINE_DIR
        if quarantine_dir.is_dir():
            for entry in quarantine_dir.iterdir():
                match = _GENERATION_RE.match(entry.name.split(".")[0])
                if match:
                    indices.append(int(match.group(1)))
        return max(indices) + 1

    def _set_current(self, name: str) -> None:
        target = os.path.join(_GENERATIONS_DIR, name)
        link = self.root / _CURRENT_LINK
        staged = self.root / f".current-{os.getpid()}"
        try:
            if staged.is_symlink() or staged.exists():
                staged.unlink()
            os.symlink(target, staged)
            os.replace(staged, link)
        except OSError:
            # Filesystem without symlinks: fall back to an atomically
            # replaced one-line marker file.
            staged.unlink(missing_ok=True)
            marker_tmp = self.root / f".{_CURRENT_FILE}-{os.getpid()}"
            marker_tmp.write_text(name + "\n")
            os.replace(marker_tmp, self.root / _CURRENT_FILE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        current = self.current_path()
        return (
            f"ArtifactStore(root={str(self.root)!r}, "
            f"generations={len(self.generations())}, "
            f"current={current.name if current else None})"
        )


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but owned elsewhere
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill
        return True
    return True
