"""BePI reproduction: fast and memory-efficient Random Walk with Restart.

A from-scratch Python implementation of

    Jung, Park, Sael, Kang.
    "BePI: Fast and Memory-Efficient Method for Billion-Scale Random Walk
    with Restart."  SIGMOD 2017.

Quickstart
----------
>>> from repro import BePI, generate_rmat
>>> graph = generate_rmat(8, 1500, seed=7)
>>> solver = BePI(c=0.05).preprocess(graph)
>>> scores = solver.query(0)          # RWR scores of every node w.r.t. node 0
>>> ranking = scores.argsort()[::-1]  # personalized ranking for node 0

Package map
-----------
- :mod:`repro.core` — BePI / BePI-S / BePI-B and the solver interface,
- :mod:`repro.baselines` — Bear, LU, GMRES, power iteration, dense inverse,
- :mod:`repro.graph` — graph container, generators, I/O, components,
- :mod:`repro.reorder` — deadend + SlashBurn hub-and-spoke reordering,
- :mod:`repro.linalg` — GMRES, ILU(0), triangular solves, block LU,
- :mod:`repro.datasets` — seeded stand-ins for the paper's datasets,
- :mod:`repro.applications` — ranking, link prediction, community detection,
- :mod:`repro.bench` — experiment harness and memory accounting.
"""

from repro import datasets
from repro.approximate import NBLinSolver
from repro.baselines import BearSolver, DenseSolver, GMRESSolver, LUSolver, PowerSolver
from repro.bench.memory import MemoryBudget
from repro.core.accuracy import AccuracyBound, accuracy_bound, tolerance_for_target
from repro.core.base import BatchQueryResult, QueryResult, RWRSolver
from repro.core.bepi import BePI, BePIB, BePIS
from repro.core.dynamic import DynamicRWR
from repro.core.hub_ratio import (
    HubRatioSelection,
    choose_hub_ratio,
    select_hub_ratio,
    sweep_hub_ratios,
)
from repro.persistence import load_solver, save_solver
from repro.exceptions import (
    ConvergenceError,
    ConvergenceWarning,
    GraphFormatError,
    InvalidParameterError,
    MemoryBudgetExceededError,
    NotPreprocessedError,
    ReproError,
    SingularMatrixError,
    TimeBudgetExceededError,
)
from repro.graph import (
    Graph,
    add_deadends,
    generate_bipartite,
    generate_erdos_renyi,
    generate_hub_and_spoke,
    generate_preferential_attachment,
    generate_rmat,
    load_edge_list,
    save_edge_list,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyBound",
    "BatchQueryResult",
    "BePI",
    "BePIB",
    "BePIS",
    "BearSolver",
    "ConvergenceError",
    "ConvergenceWarning",
    "DenseSolver",
    "DynamicRWR",
    "GMRESSolver",
    "Graph",
    "GraphFormatError",
    "HubRatioSelection",
    "InvalidParameterError",
    "LUSolver",
    "MemoryBudget",
    "MemoryBudgetExceededError",
    "NBLinSolver",
    "NotPreprocessedError",
    "PowerSolver",
    "QueryResult",
    "RWRSolver",
    "ReproError",
    "SingularMatrixError",
    "TimeBudgetExceededError",
    "accuracy_bound",
    "add_deadends",
    "choose_hub_ratio",
    "datasets",
    "generate_bipartite",
    "generate_erdos_renyi",
    "generate_hub_and_spoke",
    "generate_preferential_attachment",
    "generate_rmat",
    "load_edge_list",
    "load_solver",
    "save_edge_list",
    "save_solver",
    "select_hub_ratio",
    "sweep_hub_ratios",
    "tolerance_for_target",
    "__version__",
]
