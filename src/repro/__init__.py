"""BePI reproduction: fast and memory-efficient Random Walk with Restart.

A from-scratch Python implementation of

    Jung, Park, Sael, Kang.
    "BePI: Fast and Memory-Efficient Method for Billion-Scale Random Walk
    with Restart."  SIGMOD 2017.

Quickstart
----------
>>> from repro import BePI, generate_rmat
>>> graph = generate_rmat(8, 1500, seed=7)
>>> solver = BePI(c=0.05).preprocess(graph)
>>> scores = solver.query(0)          # RWR scores of every node w.r.t. node 0
>>> ranking = scores.argsort()[::-1]  # personalized ranking for node 0

Package map
-----------
- :mod:`repro.core` — BePI / BePI-S / BePI-B and the solver interface,
- :mod:`repro.baselines` — Bear, LU, GMRES, power iteration, dense inverse,
- :mod:`repro.graph` — graph container, generators, I/O, components,
- :mod:`repro.reorder` — deadend + SlashBurn hub-and-spoke reordering,
- :mod:`repro.linalg` — GMRES, ILU(0), triangular solves, block LU,
- :mod:`repro.datasets` — seeded stand-ins for the paper's datasets,
- :mod:`repro.applications` — ranking, link prediction, community detection,
- :mod:`repro.bench` — experiment harness and memory accounting,
- :mod:`repro.persistence` / :mod:`repro.store` / :mod:`repro.serve` — the
  build/serve split: immutable artifact directories, generation store with
  atomic switchover, and multi-process mmap-backed query serving,
- :mod:`repro.wire` / :mod:`repro.gateway` — the multi-host serve tier:
  length-prefixed binary socket protocol and the asyncio gateway
  (request coalescing, admission control, consistent-hash sharding),
- :mod:`repro.core.dynamic` / :mod:`repro.core.incremental` — continuous
  updates: edge-update batches applied as bounded incremental corrections,
  background rebuilds publishing new store generations, hot-swapped into
  the serve tier with zero downtime.
"""

from repro import datasets, telemetry, tracing, wire
from repro.approximate import NBLinSolver
from repro.baselines import BearSolver, DenseSolver, GMRESSolver, LUSolver, PowerSolver
from repro.bench.memory import MemoryBudget
from repro.core.accuracy import AccuracyBound, accuracy_bound, tolerance_for_target
from repro.core.base import BatchQueryResult, QueryResult, RWRSolver
from repro.core.bepi import BePI, BePIB, BePIS
from repro.core.dynamic import BackgroundRebuildError, DynamicRWR
from repro.core.engine import (
    BearQueryEngine,
    BePIQueryEngine,
    LUQueryEngine,
    QueryEngine,
    SolverArtifacts,
)
from repro.core.incremental import (
    IncrementalResult,
    UpdateBatch,
    UpdateResult,
    build_updated_bundle,
    incremental_update,
)
from repro.core.hub_ratio import (
    HubRatioSelection,
    choose_hub_ratio,
    select_hub_ratio,
    sweep_hub_ratios,
)
from repro.persistence import (
    artifact_nbytes,
    load_artifacts,
    load_solver,
    save_artifacts,
    save_solver,
    verify_artifacts,
)
from repro.core.topk import TopKResult
from repro.gateway import (
    BackendError,
    Gateway,
    GatewayServer,
    LocalBackend,
    Overloaded,
    PoolServer,
    QueryError,
    RemoteBackend,
)
from repro.serve import TopKCache, WorkerPool, open_query_engine
from repro.store import ArtifactStore
from repro.telemetry import MetricsRegistry, merge_snapshots
from repro.exceptions import (
    ArtifactIntegrityError,
    ConvergenceError,
    ConvergenceWarning,
    GraphFormatError,
    InvalidParameterError,
    MemoryBudgetExceededError,
    NotPreprocessedError,
    ReproError,
    SingularMatrixError,
    TimeBudgetExceededError,
)
from repro.graph import (
    Graph,
    add_deadends,
    generate_bipartite,
    generate_erdos_renyi,
    generate_hub_and_spoke,
    generate_preferential_attachment,
    generate_rmat,
    load_edge_list,
    save_edge_list,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyBound",
    "ArtifactIntegrityError",
    "ArtifactStore",
    "BackendError",
    "BackgroundRebuildError",
    "BatchQueryResult",
    "BePI",
    "BePIB",
    "BePIQueryEngine",
    "BePIS",
    "BearQueryEngine",
    "BearSolver",
    "ConvergenceError",
    "ConvergenceWarning",
    "DenseSolver",
    "DynamicRWR",
    "GMRESSolver",
    "Gateway",
    "GatewayServer",
    "Graph",
    "GraphFormatError",
    "HubRatioSelection",
    "IncrementalResult",
    "InvalidParameterError",
    "LUQueryEngine",
    "LUSolver",
    "LocalBackend",
    "MemoryBudget",
    "MemoryBudgetExceededError",
    "MetricsRegistry",
    "NBLinSolver",
    "NotPreprocessedError",
    "Overloaded",
    "PoolServer",
    "PowerSolver",
    "QueryEngine",
    "QueryError",
    "QueryResult",
    "RWRSolver",
    "RemoteBackend",
    "ReproError",
    "SingularMatrixError",
    "SolverArtifacts",
    "TimeBudgetExceededError",
    "TopKCache",
    "TopKResult",
    "UpdateBatch",
    "UpdateResult",
    "WorkerPool",
    "accuracy_bound",
    "add_deadends",
    "artifact_nbytes",
    "build_updated_bundle",
    "choose_hub_ratio",
    "datasets",
    "generate_bipartite",
    "generate_erdos_renyi",
    "generate_hub_and_spoke",
    "generate_preferential_attachment",
    "generate_rmat",
    "incremental_update",
    "load_artifacts",
    "load_edge_list",
    "load_solver",
    "merge_snapshots",
    "open_query_engine",
    "save_artifacts",
    "save_edge_list",
    "save_solver",
    "select_hub_ratio",
    "sweep_hub_ratios",
    "telemetry",
    "tolerance_for_target",
    "tracing",
    "verify_artifacts",
    "wire",
    "__version__",
]
