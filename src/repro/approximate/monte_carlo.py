"""Monte-Carlo RWR estimation (related work, Section 5).

The paper's related work covers Monte-Carlo approaches (Fast-PPR, Bahmani
et al.): simulate random walks with restart and estimate scores from the
empirical distribution of walk endpoints.  The estimator here follows the
exact semantics of ``r = c H^{-1} q``:

- at each step the surfer *stops* with probability ``c`` (the endpoint is
  a sample of the RWR distribution),
- otherwise it moves to a uniformly random out-neighbor,
- a surfer at a deadend that does not stop is absorbed and contributes no
  sample — reproducing the probability leak of the linear system
  (``sum(r) < 1`` on graphs with deadends).

Walks are simulated in vectorized batches over CSR arrays, so millions of
steps cost a handful of numpy operations per step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.bench.memory import MemoryBudget
from repro.core.base import RWRSolver
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph


class MonteCarloSolver(RWRSolver):
    """Approximate RWR scores from ``n_walks`` simulated random walks.

    Parameters
    ----------
    n_walks:
        Walks simulated per query.  The per-entry standard error scales as
        ``O(1 / sqrt(n_walks))``.
    max_steps:
        Hard cap on walk length (a geometric(c) horizon has mean ``1/c``;
        the default covers > 1 - 1e-9 of its mass at c = 0.05).
    seed:
        RNG seed; queries are deterministic given (solver seed, query seed
        node).
    c, tol, memory_budget:
        See :class:`~repro.core.base.RWRSolver` (``tol`` is unused — the
        error is controlled by ``n_walks``).
    """

    name = "MonteCarlo"

    def __init__(
        self,
        n_walks: int = 10_000,
        max_steps: Optional[int] = None,
        seed: int = 0,
        c: float = 0.05,
        tol: float = 1e-9,
        memory_budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(c=c, tol=tol, memory_budget=memory_budget)
        if n_walks < 1:
            raise InvalidParameterError(f"n_walks must be >= 1, got {n_walks}")
        self.n_walks = n_walks
        # Geometric(c) tail: P(T > t) = (1-c)^t; solve for 1e-9 mass.
        if max_steps is None:
            max_steps = int(np.ceil(np.log(1e-9) / np.log(1.0 - c))) + 1
        if max_steps < 1:
            raise InvalidParameterError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self.seed = seed
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._out_degrees: Optional[np.ndarray] = None

    def _preprocess(self, graph: Graph) -> None:
        # Monte Carlo needs only the CSR arrays of the graph itself, which
        # iterative methods are not charged for (paper's accounting).
        adj = graph.adjacency
        self._indptr = adj.indptr.astype(np.int64)
        self._indices = adj.indices.astype(np.int64)
        self._out_degrees = np.diff(self._indptr)

    def _query(self, q: np.ndarray) -> Tuple[np.ndarray, int]:
        assert self._indptr is not None
        n = q.shape[0]
        weights = np.asarray(q, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise InvalidParameterError("starting vector must have positive mass")
        # Deterministic per (solver seed, q): hash the support into the seed.
        support = np.flatnonzero(weights)
        rng = np.random.default_rng(
            (self.seed, int(support[0]), support.size)
        )

        # Start positions sampled from q (exact for one-hot seeds).
        starts = rng.choice(n, size=self.n_walks, p=weights / total)
        current = starts.copy()
        alive = np.ones(self.n_walks, dtype=bool)
        endpoint_counts = np.zeros(n, dtype=np.int64)

        for _step in range(self.max_steps):
            if not alive.any():
                break
            active = np.flatnonzero(alive)
            # Stop-and-record with probability c.
            stops = rng.random(active.size) < self.c
            stopped_nodes = current[active[stops]]
            endpoint_counts += np.bincount(stopped_nodes, minlength=n)
            alive[active[stops]] = False

            movers = active[~stops]
            if movers.size == 0:
                continue
            nodes = current[movers]
            degrees = self._out_degrees[nodes]
            # Deadend + no stop -> absorbed (no sample), matching the
            # linear-system leak.
            dead = degrees == 0
            alive[movers[dead]] = False
            moving = movers[~dead]
            if moving.size == 0:
                continue
            nodes = current[moving]
            offsets = (rng.random(moving.size) * self._out_degrees[nodes]).astype(np.int64)
            current[moving] = self._indices[self._indptr[nodes] + offsets]

        # Walks still alive at the horizon carry < 1e-9 of the mass; they
        # are dropped, a bias far below the Monte-Carlo noise floor.
        scores = endpoint_counts / self.n_walks
        return scores, self.max_steps

    def standard_error(self, scores: np.ndarray) -> np.ndarray:
        """Per-entry standard error of a returned score vector."""
        p = np.clip(np.asarray(scores, dtype=np.float64), 0.0, 1.0)
        return np.sqrt(p * (1.0 - p) / self.n_walks)
