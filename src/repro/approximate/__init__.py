"""Approximate RWR methods from the paper's related work (Section 5).

The paper's evaluation excludes approximate methods because every compared
method computes *exact* scores, but it discusses them at length: NB_LIN
(Tong et al. 2008) approximates ``H^{-1}`` from a low-rank decomposition of
the normalized adjacency.  This subpackage implements it so users can
trade accuracy for speed — and so the accuracy gap against the exact
solvers is measurable.
"""

from repro.approximate.degraded import ApproximateAnswerer
from repro.approximate.monte_carlo import MonteCarloSolver
from repro.approximate.nb_lin import NBLinSolver

__all__ = ["ApproximateAnswerer", "MonteCarloSolver", "NBLinSolver"]
