"""NB_LIN: low-rank approximate RWR (Tong, Faloutsos & Pan, 2008).

Cited as the main approximate preprocessing method in the paper's related
work (Section 5): decompose the normalized adjacency once, then answer
queries through the Sherman-Morrison-Woodbury identity.

With ``W = A~^T`` and a rank-``t`` SVD ``W ~= U Sigma V^T``, the RWR system
``(I - (1-c) W) r = c q`` has the closed-form approximation

    r ~= c [ q + (1-c) U ((Sigma^{-1} - (1-c) V^T U))^{-1} V^T q ]

so preprocessing stores two thin ``n x t`` factors and one tiny ``t x t``
core; queries cost two thin-matrix products.  Memory is ``O(n t)`` —
linear in ``n`` like BePI — but scores are only as good as the spectrum's
low-rank structure, which is the gap BePI closes exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.bench.memory import MemoryBudget
from repro.core.base import RWRSolver
from repro.exceptions import InvalidParameterError, SingularMatrixError
from repro.graph.graph import Graph
from repro.linalg.rwr_matrix import row_normalize


class NBLinSolver(RWRSolver):
    """Approximate RWR via rank-``t`` SVD of the normalized adjacency.

    Parameters
    ----------
    rank:
        Number of singular triplets ``t`` to keep.  Larger = more accurate,
        more memory, slower queries.
    c, tol, memory_budget:
        See :class:`~repro.core.base.RWRSolver` (``tol`` is unused: the
        method is direct but *approximate* — its error is controlled by
        ``rank``, not by a tolerance).

    Notes
    -----
    Unlike every other solver in this package, query results are
    approximations; check :meth:`approximation_error` on a sample before
    trusting downstream rankings.
    """

    name = "NB_LIN"

    def __init__(
        self,
        rank: int = 50,
        c: float = 0.05,
        tol: float = 1e-9,
        memory_budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(c=c, tol=tol, memory_budget=memory_budget)
        if rank < 1:
            raise InvalidParameterError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self._u: Optional[np.ndarray] = None
        self._vt: Optional[np.ndarray] = None
        self._core: Optional[np.ndarray] = None

    def _preprocess(self, graph: Graph) -> None:
        n = graph.n_nodes
        if n < 3:
            raise InvalidParameterError("NB_LIN needs at least 3 nodes for an SVD")
        w = row_normalize(graph.adjacency).T.tocsc()
        t = min(self.rank, n - 2)
        u, sigma, vt = spla.svds(w.astype(np.float64), k=t)
        # svds returns ascending singular values; order is irrelevant to the
        # SMW identity but keep descending for readability of stats.
        order = np.argsort(-sigma)
        u, sigma, vt = u[:, order], sigma[order], vt[order, :]
        positive = sigma > 1e-12
        u, sigma, vt = u[:, positive], sigma[positive], vt[positive, :]
        if sigma.size == 0:
            raise SingularMatrixError("adjacency has no significant singular values")

        decay = 1.0 - self.c
        core_inverse = np.diag(1.0 / sigma) - decay * (vt @ u)
        try:
            core = np.linalg.inv(core_inverse)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - degenerate
            raise SingularMatrixError("NB_LIN core matrix is singular") from exc

        self._u = u
        self._vt = vt
        self._core = core
        self._retain("U", u)
        self._retain("core", core)
        self._retain("Vt", vt)
        self.stats.update(
            {
                "rank": int(sigma.size),
                "top_singular_value": float(sigma[0]),
                "smallest_kept_singular_value": float(sigma[-1]),
            }
        )

    def _query(self, q: np.ndarray) -> Tuple[np.ndarray, int]:
        assert self._u is not None and self._vt is not None and self._core is not None
        decay = 1.0 - self.c
        projected = self._vt @ q
        r = self.c * (q + decay * (self._u @ (self._core @ projected)))
        return r, 0

    def approximation_error(self, reference: RWRSolver, seeds) -> float:
        """Mean L2 error of this solver against an exact reference solver.

        Both solvers must be preprocessed on the same graph.
        """
        self._require_preprocessed()
        errors = [
            float(np.linalg.norm(self.query(int(s)) - reference.query(int(s))))
            for s in seeds
        ]
        return float(np.mean(errors))
