"""Monte-Carlo degraded answers for the gateway's degradation ladder.

When every replica for a shard is open-circuit or a request's deadline is
nearly spent, the gateway can still say *something* useful: an approximate
RWR answer computed locally from the graph, flagged ``degraded=True`` on
the wire together with an error bound the eventual exact answer satisfies.

:class:`ApproximateAnswerer` wraps :class:`~repro.approximate.monte_carlo.
MonteCarloSolver` for that job.  The artifacts load lazily (first degraded
answer, not gateway startup) and memory-mapped, so a gateway that never
degrades never pays for the graph.  The exported bound is a per-entry
L-infinity bound from Hoeffding's inequality union-bounded over all nodes:

    P(exists i: |r_hat_i - r_i| > eps) <= delta
    eps = sqrt(ln(2 n_nodes / delta) / (2 n_walks)) + horizon_bias

so with the default ``delta = 1e-6`` the true exact scores violate a
degraded reply's stated bound less than once per million degraded replies
— which is what lets the chaos drill assert the bound against the
post-recovery exact answer deterministically.
"""

from __future__ import annotations

import math
import threading
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.approximate.monte_carlo import MonteCarloSolver
from repro.core.topk import TopKResult, topk_from_scores, validate_k
from repro.persistence import PathLike

#: Mass dropped by the walk-length horizon (see MonteCarloSolver: the
#: default max_steps covers all but 1e-9 of the geometric(c) tail).
_HORIZON_BIAS = 1e-9


class ApproximateAnswerer:
    """Serve degraded (approximate, bounded-error) RWR answers locally.

    Parameters
    ----------
    path:
        Artifact directory or store root — the same path the backends
        serve, so degraded answers come from the same graph generation.
    n_walks:
        Monte-Carlo walks per seed.  The error bound shrinks as
        ``O(1 / sqrt(n_walks))``; the default keeps a degraded answer in
        the low tens of milliseconds on million-edge graphs.
    delta:
        Probability that the exact answer violates the stated bound.
    seed:
        RNG seed — degraded answers are deterministic given
        ``(seed, query seed)``.
    """

    def __init__(
        self,
        path: PathLike,
        n_walks: int = 20_000,
        delta: float = 1e-6,
        seed: int = 0,
        mmap: bool = True,
    ):
        self.path = Path(path)
        self.n_walks = int(n_walks)
        self.delta = float(delta)
        self.seed = int(seed)
        self.mmap = mmap
        self._lock = threading.Lock()
        self._solver: Optional[MonteCarloSolver] = None
        self._bound: Optional[float] = None

    # ------------------------------------------------------------------
    # Lazy load
    # ------------------------------------------------------------------
    def _ensure_solver(self) -> MonteCarloSolver:
        with self._lock:
            if self._solver is None:
                # Local imports keep ``repro.approximate`` import-light;
                # resolve_artifact_path follows a store root's CURRENT
                # pointer exactly as the worker pool does.
                from repro.persistence import load_artifacts
                from repro.serve import resolve_artifact_path

                bundle = load_artifacts(
                    resolve_artifact_path(self.path), mmap=self.mmap
                )
                solver = MonteCarloSolver(
                    n_walks=self.n_walks,
                    seed=self.seed,
                    c=float(bundle.config.get("c", 0.05)),
                )
                solver.preprocess(bundle.graph)
                self._solver = solver
                self._bound = self._hoeffding_bound(bundle.graph.n_nodes)
            return self._solver

    def _hoeffding_bound(self, n_nodes: int) -> float:
        return (
            math.sqrt(
                math.log(2.0 * max(n_nodes, 1) / self.delta)
                / (2.0 * self.n_walks)
            )
            + _HORIZON_BIAS
        )

    @property
    def loaded(self) -> bool:
        return self._solver is not None

    @property
    def error_bound(self) -> float:
        """Per-entry L-infinity error bound of every answer (loads the
        artifacts if needed — the bound depends on ``n_nodes``)."""
        self._ensure_solver()
        assert self._bound is not None
        return self._bound

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def answer_many(self, seeds) -> Tuple[np.ndarray, float]:
        """Approximate dense scores for a seed batch.

        Returns ``(scores, bound)`` with ``scores`` of shape
        ``(len(seeds), n_nodes)`` — the degraded stand-in for
        :meth:`WorkerPool.query_many` — and ``bound`` such that every
        entry of the exact answer lies within ``bound`` of its estimate
        (with probability ``1 - delta`` per reply).
        """
        solver = self._ensure_solver()
        seed_list = [int(s) for s in seeds]
        n = solver.graph.n_nodes
        scores = np.empty((len(seed_list), n), dtype=np.float64)
        for row, node in enumerate(seed_list):
            scores[row] = solver.query(node)
        return scores, self.error_bound

    def answer_topk(
        self, seed: int, k: int, exclude_seed: bool = True
    ) -> Tuple[TopKResult, float]:
        """Approximate top-``k`` for one seed, with the same bound.

        The *scores* carry the stated bound; the *ranking* is the exact
        ranking of the approximate scores (ties toward smaller ids, same
        deterministic order as the exact path).
        """
        solver = self._ensure_solver()
        k = validate_k(k)
        scores = solver.query(int(seed))
        result = topk_from_scores(scores, int(seed), k, exclude_seed=exclude_seed)
        return result, self.error_bound

    def answer_topk_many(
        self, seeds, k: int, exclude_seed: bool = True
    ) -> Tuple[List[TopKResult], float]:
        """Approximate top-``k`` for a seed batch (one result per seed)."""
        results = [
            self.answer_topk(seed, k, exclude_seed=exclude_seed)[0]
            for seed in seeds
        ]
        return results, self.error_bound
