"""Hub-and-spoke partition of the non-deadend block (Section 3.2.1, Fig. 3c).

SlashBurn picks the hub set; this module derives the spoke *blocks* and the
node ordering BePI needs:

- remove the hubs from the (symmetrized) graph; every weakly connected
  component of the remainder is one spoke block,
- order spokes block by block, then hubs, so the spoke-spoke submatrix
  ``H11`` is block diagonal with one diagonal block per component (edges
  between different components cannot exist once hubs are removed).

``n1`` (spokes), ``n2`` (hubs) and the diagonal block sizes ``n1i`` of the
paper all come from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.reorder.permutation import Permutation
from repro.reorder.slashburn import SlashBurnResult, slashburn


@dataclass(frozen=True)
class HubSpokePartition:
    """Spoke/hub ordering of a graph.

    Attributes
    ----------
    permutation:
        Orders spokes first (grouped into connected blocks), hubs last.
        ``None`` on partitions reconstructed from a saved archive that
        predates the ``hubspoke_order`` field — the ordering was never
        stored, and pretending with an identity would silently lie.
    n_spokes:
        ``n1`` in the paper.
    n_hubs:
        ``n2`` in the paper.
    block_sizes:
        Sizes ``n1i`` of the diagonal blocks of ``H11``; ``sum == n_spokes``.
    slashburn_iterations:
        Hub-removal rounds performed by SlashBurn.
    hub_ratio:
        The ``k`` used for hub selection.
    """

    permutation: Optional[Permutation]
    n_spokes: int
    n_hubs: int
    block_sizes: np.ndarray
    slashburn_iterations: int
    hub_ratio: float

    @property
    def n_nodes(self) -> int:
        return self.n_spokes + self.n_hubs

    @property
    def n_blocks(self) -> int:
        """``b`` in the paper."""
        return int(self.block_sizes.shape[0])


def _degree_hub_selection(sym, k: float) -> SlashBurnResult:
    """One-shot alternative to SlashBurn: top ``ceil(k n)`` nodes by degree.

    Used by the ordering ablation — it skips the shatter-and-recurse loop,
    so the spoke blocks it induces are typically much larger than
    SlashBurn's.
    """
    import math

    n = sym.shape[0]
    count = max(1, math.ceil(k * n))
    degrees = np.asarray(sym.sum(axis=1)).ravel()
    hubs = np.sort(np.argsort(-degrees, kind="stable")[:count].astype(np.int64))
    mask = np.ones(n, dtype=bool)
    mask[hubs] = False
    return SlashBurnResult(
        hubs=hubs,
        spokes=np.flatnonzero(mask),
        n_iterations=1,
        hubs_per_iteration=count,
    )


def hub_and_spoke_partition(
    graph: Graph,
    k: float,
    slashburn_result: Optional[SlashBurnResult] = None,
    method: str = "slashburn",
) -> HubSpokePartition:
    """Compute the hub-and-spoke ordering of ``graph``.

    Parameters
    ----------
    graph:
        The (non-deadend) graph to reorder.
    k:
        SlashBurn hub selection ratio.
    slashburn_result:
        Pre-computed SlashBurn output to reuse (the hub-ratio sweep of
        BePI-S calls SlashBurn once per candidate ``k``; tests inject known
        hub sets here).
    method:
        ``"slashburn"`` (the paper's choice) or ``"degree"`` — a single
        highest-degree cut used as the ordering ablation baseline.
    """
    from repro.exceptions import InvalidParameterError

    if method not in ("slashburn", "degree"):
        raise InvalidParameterError(
            f"method must be 'slashburn' or 'degree', got {method!r}"
        )
    n = graph.n_nodes
    if n == 0:
        return HubSpokePartition(
            permutation=Permutation.identity(0),
            n_spokes=0,
            n_hubs=0,
            block_sizes=np.empty(0, dtype=np.int64),
            slashburn_iterations=0,
            hub_ratio=k,
        )
    sym = graph.symmetrized()
    if slashburn_result is not None:
        result = slashburn_result
    elif method == "degree":
        result = _degree_hub_selection(sym, k)
    else:
        result = slashburn(sym, k)
    hubs = result.hubs
    spokes = result.spokes

    if spokes.size == 0:
        order = hubs
        block_sizes = np.empty(0, dtype=np.int64)
    else:
        # One diagonal block of H11 per weakly connected component of the
        # hub-free graph.
        spoke_sub = sym[spokes][:, spokes]
        _n_comp, labels = connected_components(spoke_sub)
        by_block = np.argsort(labels, kind="stable")
        ordered_spokes = spokes[by_block]
        block_sizes = np.bincount(labels).astype(np.int64)
        order = np.concatenate([ordered_spokes, hubs])

    return HubSpokePartition(
        permutation=Permutation(order),
        n_spokes=int(spokes.size),
        n_hubs=int(hubs.size),
        block_sizes=block_sizes,
        slashburn_iterations=result.n_iterations,
        hub_ratio=k,
    )
