"""SlashBurn hub selection (Kang & Faloutsos 2011; Appendix A of the paper).

SlashBurn iteratively removes the ``ceil(k * n)`` highest-degree nodes
("hubs") from the current giant connected component.  Removing hubs shatters
a hub-and-spoke graph into many small components ("spokes"); the procedure
recurses on the remaining giant component until it is no larger than the
per-iteration hub count.

This module only performs *hub selection*; the actual node ordering (spokes
grouped into connected blocks before hubs) is assembled by
:mod:`repro.reorder.hubspoke`, which is what BePI needs to make ``H11``
block diagonal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidParameterError
from repro.graph.components import connected_components


@dataclass(frozen=True)
class SlashBurnResult:
    """Outcome of SlashBurn hub selection.

    Attributes
    ----------
    hubs:
        Node ids selected as hubs, in selection order (iteration by
        iteration, highest degree first).  Includes the final giant
        component remainder, which cannot be shattered further.
    spokes:
        All remaining node ids (ascending).
    n_iterations:
        Number of hub-removal rounds performed.
    hubs_per_iteration:
        The fixed per-round hub count ``ceil(k * n)``.
    """

    hubs: np.ndarray
    spokes: np.ndarray
    n_iterations: int
    hubs_per_iteration: int


def slashburn(adjacency: sp.spmatrix, k: float) -> SlashBurnResult:
    """Run SlashBurn hub selection on a graph.

    Parameters
    ----------
    adjacency:
        Square sparse adjacency matrix; edge direction is ignored (hubs are
        ranked by total degree and components are weak).
    k:
        Hub selection ratio in ``(0, 1]``; each round removes
        ``ceil(k * n)`` nodes where ``n`` is the total node count.

    Returns
    -------
    SlashBurnResult

    Notes
    -----
    Determinism: degree ties are broken toward the smaller node id, so the
    same input always yields the same hub set.
    """
    if not 0.0 < k <= 1.0:
        raise InvalidParameterError(f"hub selection ratio k must be in (0, 1], got {k}")
    adj = sp.csr_matrix(adjacency)
    n = adj.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return SlashBurnResult(empty, empty, 0, 0)
    hub_count = max(1, math.ceil(k * n))

    sym = adj + adj.T
    sym.data = np.ones_like(sym.data)

    # ``current`` holds original node ids of the still-connected core.
    current = np.arange(n, dtype=np.int64)
    hubs: list = []
    n_iterations = 0

    while current.size > hub_count:
        n_iterations += 1
        sub = sym[current][:, current]
        degrees = np.asarray(sub.sum(axis=1)).ravel()
        # Highest degree first; ties toward smaller original id.  argsort is
        # stable, so sorting by (-degree) keeps ascending-id order for ties.
        top_local = np.argsort(-degrees, kind="stable")[:hub_count]
        hubs.append(current[np.sort(top_local)])

        keep_mask = np.ones(current.size, dtype=bool)
        keep_mask[top_local] = False
        remaining = current[keep_mask]
        if remaining.size == 0:
            current = remaining
            break
        rem_sub = sym[remaining][:, remaining]
        _n_comp, labels = connected_components(rem_sub)
        sizes = np.bincount(labels)
        giant = int(np.argmax(sizes))
        in_giant = labels == giant
        # Non-giant nodes become spokes implicitly (they are simply never
        # selected as hubs); recurse on the giant component.
        current = remaining[in_giant]

    # The unshatterable remainder joins the hub side: it is not guaranteed to
    # decompose into small blocks, so BePI keeps it in the H22 partition.
    if current.size:
        hubs.append(current)

    hub_ids = np.concatenate(hubs) if hubs else np.empty(0, dtype=np.int64)
    spoke_mask = np.ones(n, dtype=bool)
    spoke_mask[hub_ids] = False
    spokes = np.flatnonzero(spoke_mask)
    return SlashBurnResult(
        hubs=hub_ids,
        spokes=spokes,
        n_iterations=n_iterations,
        hubs_per_iteration=hub_count,
    )
