"""Permutations of node ids.

A :class:`Permutation` is stored in *ordering* form: ``order[i]`` is the old
node id placed at new position ``i``.  This matches how reorderings are
naturally produced ("spokes first, then hubs, then deadends") and how sparse
matrices are permuted (``A[order][:, order]``).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidParameterError


class Permutation:
    """A bijection between old node ids and new positions.

    Parameters
    ----------
    order:
        ``order[i]`` = old id that moves to new position ``i``.
    """

    __slots__ = ("_order", "_positions")

    def __init__(self, order: Union[np.ndarray, Sequence[int]]):
        arr = np.asarray(order, dtype=np.int64)
        n = arr.shape[0]
        if arr.ndim != 1 or not np.array_equal(np.sort(arr), np.arange(n)):
            raise InvalidParameterError("order must be a rearrangement of 0..n-1")
        self._order = arr
        positions = np.empty(n, dtype=np.int64)
        positions[arr] = np.arange(n)
        self._positions = positions

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` elements."""
        return cls(np.arange(n))

    @property
    def order(self) -> np.ndarray:
        """``order[i]`` = old id at new position ``i``."""
        return self._order

    @property
    def positions(self) -> np.ndarray:
        """``positions[old_id]`` = new position of ``old_id`` (the inverse map)."""
        return self._positions

    def __len__(self) -> int:
        return self._order.shape[0]

    def inverse(self) -> "Permutation":
        """The inverse permutation (ordering and positions swap roles)."""
        return Permutation(self._positions)

    def compose(self, inner: "Permutation") -> "Permutation":
        """The permutation "apply ``inner`` first, then ``self``".

        If ``B = inner(A)`` and ``C = self(B)`` then
        ``C = self.compose(inner)(A)``.
        """
        if len(inner) != len(self):
            raise InvalidParameterError("cannot compose permutations of different sizes")
        return Permutation(inner.order[self._order])

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_to_vector(self, vector: np.ndarray) -> np.ndarray:
        """Reorder a per-node vector into the new order: ``out[i] = v[order[i]]``.

        Accepts an ``(n,)`` vector or an ``(n, k)`` block whose columns are
        per-node vectors (the batched query path); rows are gathered either
        way.
        """
        vec = np.asarray(vector)
        if vec.shape[0] != len(self):
            raise InvalidParameterError(
                f"vector length {vec.shape[0]} != permutation size {len(self)}"
            )
        return vec[self._order]

    def unapply_to_vector(self, vector: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`apply_to_vector`: map a new-order vector (or
        ``(n, k)`` block) back to the original order."""
        vec = np.asarray(vector)
        if vec.shape[0] != len(self):
            raise InvalidParameterError(
                f"vector length {vec.shape[0]} != permutation size {len(self)}"
            )
        # out[order[i]] = vec[i], expressed as the equivalent gather
        # out[j] = vec[positions[j]] (a row gather is much faster than a
        # scatter on (n, k) blocks).
        return np.take(vec, self._positions, axis=0)

    def apply_to_matrix(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        """Symmetrically permute a square sparse matrix into the new order."""
        mat = sp.csr_matrix(matrix)
        if mat.shape != (len(self), len(self)):
            raise InvalidParameterError(
                f"matrix shape {mat.shape} incompatible with permutation size {len(self)}"
            )
        return mat[self._order][:, self._order].tocsr()

    def extend_with_offset(self, total: int, offset: int) -> "Permutation":
        """Embed this permutation of a contiguous id range into a larger identity.

        The result permutes positions ``offset .. offset+len(self)-1`` (whose
        old ids are assumed to be that same range) and leaves every other
        position fixed.  Used to lift the hub-and-spoke permutation of the
        non-deadend block into a permutation of the whole graph.
        """
        if offset < 0 or offset + len(self) > total:
            raise InvalidParameterError("embedded permutation does not fit")
        order = np.arange(total, dtype=np.int64)
        order[offset : offset + len(self)] = self._order + offset
        return Permutation(order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Permutation(n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self._order, other._order)

    def __hash__(self) -> int:
        return hash(self._order.tobytes())
