"""Node reordering: deadend separation and hub-and-spoke (SlashBurn) ordering.

BePI's preprocessing (Section 3.2 of the paper) rests on two reorderings:

1. :func:`~repro.reorder.deadend.deadend_reorder` places non-deadend nodes
   before deadend nodes, shrinking the linear system to the non-deadend
   block (Eq. 3-4).
2. :func:`~repro.reorder.hubspoke.hub_and_spoke_partition` runs SlashBurn
   (:mod:`repro.reorder.slashburn`) on the non-deadend subgraph and orders
   spokes (grouped into connected blocks) before hubs, making ``H11`` block
   diagonal (Fig. 3).
"""

from repro.reorder.deadend import DeadendSplit, deadend_reorder
from repro.reorder.hubspoke import HubSpokePartition, hub_and_spoke_partition
from repro.reorder.permutation import Permutation
from repro.reorder.slashburn import SlashBurnResult, slashburn

__all__ = [
    "DeadendSplit",
    "HubSpokePartition",
    "Permutation",
    "SlashBurnResult",
    "deadend_reorder",
    "hub_and_spoke_partition",
    "slashburn",
]
