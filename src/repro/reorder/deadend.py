"""Deadend reordering (Section 3.2.1 of the paper).

Deadends are nodes with no outgoing edges.  Reordering them after all
non-deadend nodes turns ``H`` into the 2x2 block form

    H = [[H_nn, 0],
         [H_dn, I]]

so the solve reduces to the (smaller) non-deadend system plus one cheap
back-substitution (Eq. 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.permutation import Permutation


@dataclass(frozen=True)
class DeadendSplit:
    """Result of deadend reordering.

    Attributes
    ----------
    permutation:
        Orders non-deadends first (relative order preserved), deadends last.
    n_non_deadends:
        Number of nodes with at least one outgoing edge.
    n_deadends:
        ``n3`` in the paper.
    """

    permutation: Permutation
    n_non_deadends: int
    n_deadends: int

    @property
    def n_nodes(self) -> int:
        return self.n_non_deadends + self.n_deadends


def deadend_reorder(graph: Graph) -> DeadendSplit:
    """Compute the deadend split of ``graph``.

    The split is a single pass: nodes that point only at deadends stay in the
    non-deadend block (their rows of ``H_nn`` are still invertible because
    ``H`` is strictly diagonally dominant for ``0 < c < 1``).
    """
    mask = graph.deadend_mask()
    non_deadends = np.flatnonzero(~mask)
    deadends = np.flatnonzero(mask)
    order = np.concatenate([non_deadends, deadends])
    return DeadendSplit(
        permutation=Permutation(order),
        n_non_deadends=int(non_deadends.size),
        n_deadends=int(deadends.size),
    )
