"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``       structural statistics of an edge-list graph
``preprocess``  preprocess a graph with BePI and save the solver (.npz)
``build``       preprocess and export a serving artifact directory (or store)
``query``       top-k RWR ranking for a seed (edge list, .npz, or artifact dir)
``serve``       answer seed batches from worker processes over an artifact dir
                (``--listen HOST:PORT`` exposes the pool over the wire protocol;
                ``--follow-store SECONDS`` hot-swaps onto newly published
                generations while serving)
``update``      apply an edge-update batch to a store's current generation and
                publish the corrected artifacts as the next generation
``gateway``     coalescing/shedding/sharding front door over serve backends
``top``         live terminal view of a serving fleet (QPS, latency
                percentiles, queue depths, cache hit rate, generations,
                recent slow queries) polled over ``OP_METRICS``
``compare``     run the method comparison matrix on one graph
``datasets``    list the built-in stand-in datasets
``metrics``     render a telemetry snapshot (JSON file written by --metrics-out)

``build``, ``query`` and ``serve`` accept ``--metrics-out PATH`` to export
the run's metrics (see :mod:`repro.telemetry`) as a JSON snapshot; ``serve``
keeps the file fresh after every batch, so a long-running pool can be
observed with ``repro-cli metrics PATH`` from another terminal.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import (
    BePI,
    BePIB,
    BePIS,
    BearSolver,
    GMRESSolver,
    LUSolver,
    NBLinSolver,
    PowerSolver,
    load_edge_list,
)
from repro.approximate import MonteCarloSolver
from repro.applications import top_k
from repro.bench.harness import ExperimentRunner, format_records
from repro.graph.stats import compute_stats
from repro.persistence import artifact_nbytes, load_solver, save_artifacts, save_solver
from repro.telemetry import MetricsRegistry

_METHODS = {
    "bepi": BePI,
    "bepi-s": BePIS,
    "bepi-b": BePIB,
    "bear": BearSolver,
    "lu": LUSolver,
    "gmres": GMRESSolver,
    "power": PowerSolver,
    "nblin": NBLinSolver,
    "montecarlo": MonteCarloSolver,
}


def _hub_ratio_arg(value: str):
    """``--hub-ratio`` accepts a float in (0, 1] or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"hub ratio must be a float or 'auto', got {value!r}"
        )


def _add_solver_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", choices=sorted(_METHODS), default="bepi",
                        help="RWR method (default: bepi)")
    parser.add_argument("--c", type=float, default=0.05,
                        help="restart probability (default: 0.05)")
    parser.add_argument("--tol", type=float, default=1e-9,
                        help="error tolerance (default: 1e-9)")
    parser.add_argument("--hub-ratio", type=_hub_ratio_arg, default=None,
                        help="SlashBurn hub selection ratio k, or 'auto' to "
                             "sweep candidates and pick the |S| minimizer "
                             "(BePI family)")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="worker threads for the parallel preprocessing "
                             "stages; -1 = all CPUs (BePI family, default: 1)")


def _build_solver(args: argparse.Namespace):
    cls = _METHODS[args.method]
    kwargs = {"c": args.c, "tol": args.tol}
    if args.method.startswith("bepi"):
        if args.hub_ratio is not None:
            kwargs["hub_ratio"] = args.hub_ratio
        if getattr(args, "n_jobs", 1) != 1:
            kwargs["n_jobs"] = args.n_jobs
    if args.hub_ratio is not None and args.method == "bear":
        if args.hub_ratio == "auto":
            raise SystemExit("error: --hub-ratio auto is only supported by "
                             "the BePI family")
        kwargs["hub_ratio"] = args.hub_ratio
    return cls(**kwargs)


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a registry's JSON snapshot to ``path`` (parents created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(registry.to_json())
    print(f"wrote metrics snapshot to {path}")


def _add_tracing_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-sample", type=float, default=None, metavar="RATE",
                        help="fraction of requests to trace, 0..1 "
                             "(default %(default)s -> library default)")
    parser.add_argument("--trace-log", metavar="PATH", default=None,
                        help="append finished span records to PATH as JSON "
                             "lines (written atomically, tmp + rename)")
    parser.add_argument("--slow-query", type=float, default=None, metavar="SECONDS",
                        help="log any traced request slower than this with "
                             "its full span breakdown")


def _configure_tracing(args: argparse.Namespace):
    """Replace the global tracer when any tracing flag was given."""
    from repro import tracing

    if (args.trace_sample is None and args.trace_log is None
            and args.slow_query is None):
        return tracing.get_tracer()
    kwargs = {}
    if args.trace_sample is not None:
        kwargs["sample_rate"] = args.trace_sample
    if args.trace_log is not None:
        kwargs["log_path"] = args.trace_log
    if args.slow_query is not None:
        kwargs["slow_threshold"] = args.slow_query
    return tracing.configure(**kwargs)


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    stats = compute_stats(graph)
    print(f"nodes            {stats.n_nodes:,}")
    print(f"edges            {stats.n_edges:,}")
    print(f"deadends         {stats.n_deadends:,} "
          f"({stats.n_deadends / max(stats.n_nodes, 1):.1%})")
    print(f"max out-degree   {stats.max_out_degree:,}")
    print(f"max in-degree    {stats.max_in_degree:,}")
    print(f"mean out-degree  {stats.mean_out_degree:.2f}")
    print(f"degree tail slope {stats.degree_tail_slope:.2f}")
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    solver = _build_solver(args)
    if not isinstance(solver, BePI):
        print("error: only the BePI family supports saving", file=sys.stderr)
        return 2
    solver.preprocess(graph)
    save_solver(solver, args.output)
    print(f"preprocessed {graph.n_nodes:,} nodes / {graph.n_edges:,} edges "
          f"in {solver.stats['preprocess_seconds']:.3f}s")
    print(f"partition: n1={solver.stats['n1']} n2={solver.stats['n2']} "
          f"n3={solver.stats['n3']}")
    print(f"saved {solver.memory_bytes():,} bytes of preprocessed data "
          f"to {args.output}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    solver = _build_solver(args)
    if not isinstance(solver, BePI):
        print("error: only the BePI family supports artifact export", file=sys.stderr)
        return 2
    solver.preprocess(graph)
    if args.store:
        from repro.store import ArtifactStore

        generation = ArtifactStore(args.output).publish(solver)
        print(f"published {generation.name} under {args.output}")
        target = generation
    else:
        target = save_artifacts(solver, args.output)
        print(f"wrote artifact directory {args.output}")
    print(f"preprocessed {graph.n_nodes:,} nodes / {graph.n_edges:,} edges "
          f"in {solver.stats['preprocess_seconds']:.3f}s")
    print(f"partition: n1={solver.stats['n1']} n2={solver.stats['n2']} "
          f"n3={solver.stats['n3']}")
    print(f"artifact payload: {artifact_nbytes(target):,} bytes "
          f"(mmap-shareable across serving workers)")
    if args.metrics_out:
        _write_metrics(solver.telemetry, args.metrics_out)
    return 0


def _write_metrics_file(registry: MetricsRegistry, path: str) -> None:
    """Like :func:`_write_metrics` but silent (for periodic refreshes)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(registry.to_json())


async def _follow_store_forever(pool, interval: float) -> None:
    """Poll the pool's store every ``interval`` seconds and hot-swap the
    workers onto a freshly published generation, announcing each swap.

    Query traffic already follows the ``current`` pointer per call; this
    poller keeps an *idle* listener fresh too, so the first request after
    a publish never pays the reopen round-trip — and the printed swap line
    doubles as the externally observable acknowledgment drills wait for.
    """
    import asyncio

    loop = asyncio.get_running_loop()
    generation = await loop.run_in_executor(None, pool.refresh_generation)
    while True:
        await asyncio.sleep(interval)
        try:
            fresh = await loop.run_in_executor(None, pool.refresh_generation)
        except Exception as error:  # pragma: no cover - store race/outage
            print(f"follow-store poll failed: {error}", file=sys.stderr)
            continue
        if fresh != generation:
            print(f"now serving {fresh} (was {generation})", flush=True)
            generation = fresh


def _serve_listen(args: argparse.Namespace, fault_plan) -> int:
    """``repro serve ARTIFACTS --listen HOST:PORT`` — one shard of the
    serve tier: a :class:`~repro.gateway.PoolServer` speaking the wire
    protocol over a local :class:`~repro.serve.WorkerPool`.  Runs until
    SIGTERM/SIGINT, then drains and exits 0."""
    import asyncio
    import signal

    from repro.gateway import PoolServer, parse_endpoint
    from repro.serve import WorkerPool

    host, port = parse_endpoint(args.listen)
    tracer = _configure_tracing(args)

    async def run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        with WorkerPool(
            args.artifacts,
            n_workers=args.workers,
            metrics_path=args.metrics_out,
            fault_plan=fault_plan,
        ) as pool:
            server = PoolServer(
                pool, host, port, shed_queue_depth=args.shed_depth
            )
            async with server:
                bound_host, bound_port = server.address
                # CI and the gateway bench wait for this exact line before
                # sending traffic — keep it one flushed print.
                print(f"pool listening on {bound_host}:{bound_port} "
                      f"({args.workers} workers over {args.artifacts})",
                      flush=True)
                follower = None
                if args.follow_store:
                    follower = asyncio.create_task(
                        _follow_store_forever(pool, args.follow_store)
                    )
                try:
                    await stop.wait()
                finally:
                    if follower is not None:
                        follower.cancel()
                print("draining and shutting down", flush=True)
            tracer.flush_log()
            stats = pool.pool_stats()
            print(f"served {stats['queries_submitted']} queries across "
                  f"{stats['n_workers']} workers "
                  f"({stats['worker_restarts']} worker restarts)")
            force_killed = pool.stop()
            if force_killed:
                print(f"force-killed wedged workers: {force_killed}",
                      file=sys.stderr)
        return 0

    return asyncio.run(run())


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import time

    import numpy as np

    from repro.faults import load_plan
    from repro.serve import WorkerPool

    fault_plan = load_plan(args.fault_plan) if args.fault_plan else None
    if args.listen:
        return _serve_listen(args, fault_plan)
    tracer = _configure_tracing(args)
    if args.seeds:
        seeds = [int(s) for s in args.seeds.split(",")]
    elif args.random:
        rng = np.random.default_rng(0)
        with WorkerPool(args.artifacts, n_workers=1) as probe:
            n_nodes = probe.worker_stats()[0]["n_nodes"]
        seeds = rng.integers(0, n_nodes, size=args.random).tolist()
    else:
        print("error: provide --seeds or --random", file=sys.stderr)
        return 2

    # Graceful shutdown: the first SIGTERM/SIGINT stops accepting new
    # batches; the pool context flushes metrics and escalates on any
    # wedged worker, and the process exits 0 (a clean drain, not a crash).
    shutdown = {"signal": None}

    def _request_shutdown(signum, frame):
        shutdown["signal"] = signal.Signals(signum).name

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        with WorkerPool(
            args.artifacts,
            n_workers=args.workers,
            metrics_path=args.metrics_out,
            fault_plan=fault_plan,
        ) as pool:
            for stats in pool.worker_stats():
                delta = stats["load_rss_delta_bytes"]
                delta_text = f"{delta / 1024:.0f} KiB" if delta is not None else "n/a"
                print(f"worker {stats['worker_id']} (pid {stats['pid']}): "
                      f"opened {stats['n_nodes']:,} nodes in "
                      f"{stats['load_seconds'] * 1e3:.1f} ms, "
                      f"load RSS delta {delta_text}")
            first_round = True
            generation = pool.refresh_generation() if args.follow_store else None
            next_poll = (
                time.monotonic() + args.follow_store if args.follow_store else None
            )
            while shutdown["signal"] is None:
                # The top-k scatter path: replies are k (id, score) pairs
                # per seed, not n-float rows, and repeat rounds in linger
                # mode hit the generation-keyed result cache.
                results = pool.scatter_topk(seeds, args.top, exclude_seed=False)
                if first_round:
                    for seed, result in zip(seeds, results):
                        ranking = ", ".join(
                            f"{node}:{score:.6f}" for node, score in result.pairs()
                        )
                        print(f"seed {seed}: {ranking}")
                    first_round = False
                if not args.linger:
                    break
                # Linger mode: keep re-serving the batch (and refreshing the
                # metrics snapshot) until a signal asks us to drain.
                deadline = time.monotonic() + args.linger
                while shutdown["signal"] is None and time.monotonic() < deadline:
                    if next_poll is not None and time.monotonic() >= next_poll:
                        fresh = pool.refresh_generation()
                        if fresh != generation:
                            print(f"now serving {fresh} (was {generation})",
                                  flush=True)
                            generation = fresh
                        next_poll = time.monotonic() + args.follow_store
                    time.sleep(0.05)
            if shutdown["signal"] is not None:
                print(f"received {shutdown['signal']}: draining and shutting down",
                      flush=True)
            pool_stats = pool.pool_stats()
            print(f"served {pool_stats['queries_submitted']} queries across "
                  f"{pool_stats['n_workers']} workers "
                  f"({pool_stats['worker_restarts']} worker restarts, "
                  f"{pool_stats['requests_retried']} requests retried)")
            force_killed = pool.stop()
            if force_killed:
                print(f"force-killed wedged workers: {force_killed}",
                      file=sys.stderr)
            if args.metrics_out:
                print(f"wrote metrics snapshot to {args.metrics_out}")
            tracer.flush_log()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0


def _parse_edge_arg(text: str, with_weight: bool):
    """``U:V`` (or ``U:V:W`` when ``with_weight``) -> int/float tuple."""
    parts = text.split(":")
    try:
        if with_weight and len(parts) == 3:
            return int(parts[0]), int(parts[1]), float(parts[2])
        if len(parts) == 2:
            u, v = int(parts[0]), int(parts[1])
            return (u, v, None) if with_weight else (u, v)
    except ValueError:
        pass
    expected = "U:V[:WEIGHT]" if with_weight else "U:V"
    raise SystemExit(f"error: expected {expected}, got {text!r}")


def _cmd_update(args: argparse.Namespace) -> int:
    """``repro update STORE`` — apply edge-update batches to the store's
    current generation and publish each effective result as the next
    generation (incremental correction when the tracked error bound
    allows, full re-preprocess otherwise; see :mod:`repro.core.incremental`).
    """
    import numpy as np

    from repro.core.dynamic import DynamicRWR
    from repro.store import ArtifactStore

    if not args.add and not args.remove and not args.random_batch:
        print("error: provide --add/--remove edges or --random-batch K",
              file=sys.stderr)
        return 2
    store = ArtifactStore(args.store)
    registry = MetricsRegistry()
    with registry.activate():
        dyn = DynamicRWR.from_store(
            store,
            incremental=not args.full,
            error_bound=args.error_bound,
            n_jobs=args.n_jobs,
        )
        n_nodes = dyn.graph.n_nodes
        if args.add or args.remove:
            batches = [(
                [_parse_edge_arg(text, with_weight=True) for text in args.add],
                [_parse_edge_arg(text, with_weight=False) for text in args.remove],
            )]
        else:
            rng = np.random.default_rng(args.batch_seed)
            batches = []
            for _ in range(args.batches):
                pairs = rng.integers(0, n_nodes, size=(args.random_batch, 2))
                batches.append(([(int(u), int(v), None) for u, v in pairs], []))
        for number, (added, removed) in enumerate(batches, start=1):
            rebuilds_before = dyn.n_rebuilds
            unweighted = [(u, v) for u, v, w in added if w is None]
            weighted = [(u, v, w) for u, v, w in added if w is not None]
            if unweighted:
                dyn.add_edges(unweighted)
            if weighted:
                dyn.add_edges(
                    [(u, v) for u, v, _ in weighted],
                    weights=[w for _, _, w in weighted],
                )
            if removed:
                dyn.remove_edges(removed)
            dyn.rebuild()
            if dyn.n_rebuilds == rebuilds_before:
                print(f"batch {number}: no-op (cancelled out against the "
                      f"current graph), rebuild skipped")
                continue
            current = store.current_path()
            print(f"batch {number}: {dyn.last_rebuild_mode} rebuild -> "
                  f"{current.name if current else '?'} "
                  f"(error bound {dyn.last_error_bound:.3g}, "
                  f"{len(added)} adds / {len(removed)} removes)")
    decided = dyn.n_rebuilds + dyn.n_skipped_rebuilds
    print(f"applied {len(batches)} batch(es): {dyn.n_corrections} incremental, "
          f"{dyn.n_full_rebuilds} full, {dyn.n_skipped_rebuilds} skipped "
          f"({dyn.n_skipped_rebuilds / decided if decided else 0.0:.0%} "
          f"skip ratio)")
    if args.prune is not None:
        result = store.prune(keep=args.prune)
        print(f"pruned {len(result)} generation(s)"
              + (f", kept leased/current: {', '.join(result.skipped)}"
                 if result.skipped else ""))
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """``repro gateway --listen HOST:PORT --backend HOST:PORT ...`` — the
    coalescing/shedding/sharding front door (see :mod:`repro.gateway`)."""
    import asyncio
    import signal

    from repro import faults
    from repro.gateway import (
        Gateway,
        GatewayServer,
        LocalBackend,
        RemoteBackend,
        parse_endpoint,
    )
    from repro.serve import WorkerPool
    from repro.telemetry import GATEWAY_REQUESTS, GATEWAY_SHED

    if not args.backend and not args.artifacts:
        print("error: provide at least one --backend HOST:PORT and/or "
              "--artifacts for an in-process pool", file=sys.stderr)
        return 2
    host, port = parse_endpoint(args.listen)
    for endpoint in args.backend:
        parse_endpoint(endpoint)  # fail fast on typos, before spawning a pool
    degrade_path = None
    if args.degrade is not None:
        degrade_path = args.degrade or args.artifacts
        if not degrade_path:
            print("error: --degrade needs a path (or --artifacts to borrow)",
                  file=sys.stderr)
            return 2
    hedge_after: "object" = None
    if args.hedge_after is not None:
        try:
            hedge_after = float(args.hedge_after)
        except ValueError:
            hedge_after = args.hedge_after  # "p95"-style percentile
    if args.fault_plan:
        # Network chaos: the plan's ConnectionDrop/SlowLink/FrameCorrupt
        # specs act on this process's backend connections.
        faults.install(faults.load_plan(args.fault_plan))
    tracer = _configure_tracing(args)

    async def _flush_metrics_forever(gateway) -> None:
        while True:
            await asyncio.sleep(2.0)
            try:
                # The merged fleet registry (gateway + every polled
                # backend), so the snapshot on disk matches `repro top`.
                _write_metrics_file(gateway.fleet_registry(), args.metrics_out)
            except OSError:  # pragma: no cover - disk hiccup; retry next tick
                pass

    async def run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        backends = [
            RemoteBackend(*parse_endpoint(endpoint))
            for endpoint in args.backend
        ]
        pool = None
        try:
            if args.artifacts:
                pool = WorkerPool(args.artifacts, n_workers=args.workers)
                backends.append(LocalBackend(pool))
            answerer = None
            if degrade_path:
                from repro.approximate import ApproximateAnswerer

                answerer = ApproximateAnswerer(
                    degrade_path, n_walks=args.degrade_walks
                )
            overrides = {
                "coalesce_window": args.coalesce_window,
                "max_pending": args.max_pending,
                "shed_queue_depth": args.shed_depth,
                "breaker_threshold": args.breaker_threshold,
                "breaker_reset": args.breaker_reset,
                "failover_cooldown": args.failover_cooldown,
                "health_interval": args.health_interval,
                "hedge_after": hedge_after,
                "degraded_answerer": answerer,
            }
            gateway = Gateway(
                backends,
                tracer=tracer,
                **{k: v for k, v in overrides.items() if v is not None},
            )
            async with gateway:
                server = GatewayServer(
                    gateway, host, port,
                    default_deadline_ms=args.deadline_ms,
                )
                async with server:
                    bound_host, bound_port = server.address
                    # CI and the gateway bench wait for this exact line.
                    print(f"gateway listening on {bound_host}:{bound_port} "
                          f"over {len(backends)} backend(s): "
                          f"{', '.join(sorted(gateway.backends))}", flush=True)
                    flusher = None
                    if args.metrics_out:
                        flusher = asyncio.create_task(
                            _flush_metrics_forever(gateway)
                        )
                    try:
                        await stop.wait()
                    finally:
                        if flusher is not None:
                            flusher.cancel()
                    print("draining and shutting down", flush=True)
            tracer.flush_log()
            print(f"admitted {gateway.registry.get(GATEWAY_REQUESTS).value:.0f} "
                  f"request(s), shed "
                  f"{gateway.registry.get(GATEWAY_SHED).value:.0f}")
            if args.metrics_out:
                _write_metrics(gateway.fleet_registry(), args.metrics_out)
        finally:
            if pool is not None:
                pool.stop()
        return 0

    return asyncio.run(run())


def _cmd_query(args: argparse.Namespace) -> int:
    if str(args.graph).endswith(".npz") or os.path.isdir(args.graph):
        solver = load_solver(args.graph)
    else:
        graph = load_edge_list(args.graph)
        solver = _build_solver(args)
        solver.preprocess(graph)
    result = solver.query_detailed(args.seed)
    print(f"query answered in {result.seconds * 1e3:.2f} ms "
          f"({result.iterations} iterations)")
    ranking = top_k(solver, args.seed, args.top)
    print(f"top {args.top} nodes for seed {args.seed}:")
    for rank, (node, score) in enumerate(ranking, start=1):
        print(f"  {rank:3d}. node {node:8d}  score {score:.8f}")
    if ranking and ranking[0][1] == 0.0:
        print("note: every other node scores 0 — the seed has no outgoing "
              "edges (deadend) or its component is unreachable")
    if args.metrics_out:
        _write_metrics(solver.telemetry, args.metrics_out)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    path = args.snapshot
    if os.path.isdir(path):
        path = os.path.join(path, "metrics.json")
    if not os.path.isfile(path):
        print(f"error: no metrics snapshot at {path}", file=sys.stderr)
        return 2
    with open(path) as handle:
        registry = MetricsRegistry.from_json(handle.read())
    if args.format == "json":
        print(registry.to_json())
    elif args.format == "prometheus":
        print(registry.to_prometheus(), end="")
    else:
        snapshot = registry.snapshot()
        if snapshot["counters"]:
            print("counters")
            for name in sorted(snapshot["counters"]):
                print(f"  {name:<32} {snapshot['counters'][name]['value']:>14,.0f}")
        if snapshot["gauges"]:
            print("gauges")
            for name in sorted(snapshot["gauges"]):
                print(f"  {name:<32} {snapshot['gauges'][name]['value']:>14,.3f}")
        if snapshot["histograms"]:
            print("histograms")
            header = f"  {'name':<32} {'count':>8} {'mean':>12} {'p50':>12} {'p95':>12} {'p99':>12}"
            print(header)
            for name in sorted(snapshot["histograms"]):
                summary = registry.get(name).summary()
                print(f"  {name:<32} {summary['count']:>8.0f} {summary['mean']:>12.6g} "
                      f"{summary['p50']:>12.6g} {summary['p95']:>12.6g} "
                      f"{summary['p99']:>12.6g}")
    return 0


def _fetch_fleet(target: str) -> dict:
    """One fleet snapshot: from a JSON file, or over the wire.

    ``target`` is either a path to a JSON document (the gateway's
    ``--metrics-out`` file or a saved fleet snapshot) or a gateway /
    pool-server ``HOST:PORT`` answered via ``OP_METRICS``.
    """
    import json

    if os.path.exists(target):
        with open(target) as handle:
            return json.load(handle)

    import asyncio

    from repro import wire
    from repro.gateway import parse_endpoint

    host, port = parse_endpoint(target)

    async def fetch() -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await wire.write_message(writer, wire.MetricsRequest())
            reply = await wire.read_message(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass
        if not isinstance(reply, wire.StatsReply):
            raise wire.ProtocolError(
                f"expected StatsReply to OP_METRICS, got "
                f"{type(reply).__name__}"
            )
        return reply.stats

    return asyncio.run(fetch())


def _fleet_counter(snapshot: dict, name: str) -> float:
    entry = (snapshot.get("counters") or {}).get(name)
    return float(entry.get("value", 0.0)) if entry else 0.0


def _fleet_rate(current: dict, previous, name: str) -> Optional[float]:
    """Per-second rate of a counter between two polls, if computable."""
    if previous is None:
        return None
    prev_snapshot, elapsed = previous
    if elapsed <= 0:
        return None
    delta = _fleet_counter(current, name) - _fleet_counter(prev_snapshot, name)
    return max(0.0, delta) / elapsed


def render_fleet(snapshot: dict, previous=None) -> str:
    """Render one fleet snapshot as a terminal page (pure, testable).

    ``snapshot`` is a ``repro-fleet/v1`` document (or a bare metrics
    snapshot, rendered as a single unnamed shard); ``previous`` is an
    optional ``(snapshot, elapsed_seconds)`` pair from the prior frame
    used for QPS.
    """
    from repro import telemetry

    if not str(snapshot.get("schema", "")).startswith("repro-fleet"):
        # Bare registry snapshot (a PoolServer, or a --metrics-out file):
        # render it as a single unnamed shard.
        snapshot = {
            "schema": snapshot.get("schema", "repro-metrics"),
            "gateway": {},
            "backends": {"(self)": snapshot},
            "merged": snapshot,
            "generations": {},
            "trace": {},
            "slow_queries": [],
        }
    merged = snapshot.get("merged") or {}
    gateway_snap = snapshot.get("gateway") or {}
    backends = snapshot.get("backends") or {}
    generations = snapshot.get("generations") or {}
    trace = snapshot.get("trace") or {}
    slow = snapshot.get("slow_queries") or []
    lines: List[str] = []
    lines.append(
        f"repro fleet — {len(backends)} backend(s), schema "
        f"{snapshot.get('schema')}"
    )

    requests = _fleet_counter(gateway_snap, telemetry.GATEWAY_REQUESTS)
    qps = _fleet_rate(
        {"counters": (gateway_snap.get("counters") or {})},
        (
            ({"counters": ((previous[0].get("gateway") or {}).get("counters") or {})},
             previous[1])
            if previous is not None else None
        ),
        telemetry.GATEWAY_REQUESTS,
    )
    qps_text = f" ({qps:.1f}/s)" if qps is not None else ""
    lines.append(
        f"  requests {requests:.0f}{qps_text}   "
        f"shed {_fleet_counter(gateway_snap, telemetry.GATEWAY_SHED):.0f}   "
        f"failovers "
        f"{_fleet_counter(gateway_snap, telemetry.GATEWAY_FAILOVERS):.0f}   "
        f"backend errors "
        f"{_fleet_counter(gateway_snap, telemetry.GATEWAY_BACKEND_ERRORS):.0f}"
    )
    latency = (gateway_snap.get("histograms") or {}).get(
        telemetry.GATEWAY_REQUEST_SECONDS
    )
    if latency:
        gw_registry = MetricsRegistry.from_snapshot(gateway_snap)
        metric = gw_registry.get(telemetry.GATEWAY_REQUEST_SECONDS)
        summary = metric.summary()
        lines.append(
            f"  latency p50 {summary['p50'] * 1e3:.2f}ms "
            f"p95 {summary['p95'] * 1e3:.2f}ms "
            f"p99 {summary['p99'] * 1e3:.2f}ms "
            f"(n={summary['count']:.0f})"
        )
        exemplars = metric.exemplars()
        if exemplars:
            pairs = ", ".join(
                f"<={bound}s -> {trace_id}"
                for bound, trace_id in list(exemplars.items())[-3:]
            )
            lines.append(f"  latency exemplars: {pairs}")
    hits = _fleet_counter(merged, telemetry.TOPK_CACHE_HITS)
    misses = _fleet_counter(merged, telemetry.TOPK_CACHE_MISSES)
    if hits + misses > 0:
        lines.append(
            f"  topk cache hit rate {hits / (hits + misses) * 100:.1f}% "
            f"(hits {hits:.0f}, misses {misses:.0f})"
        )
    if trace:
        lines.append(
            f"  traces {trace.get('traces_started', 0)}   "
            f"spans {trace.get('spans_recorded', 0)} "
            f"(ring {trace.get('ring_spans', 0)}, "
            f"dropped {trace.get('ring_dropped', 0)})   "
            f"slow {trace.get('slow_queries', 0)}"
        )

    if backends:
        lines.append("")
        lines.append(f"  {'backend':<24} {'queries':>10} {'qps':>8} "
                     f"{'p95 ms':>9} {'unconverged':>12}  generation")
        for name in sorted(backends):
            shard = backends[name]
            queries = _fleet_counter(shard, telemetry.QUERIES_TOTAL)
            shard_qps = None
            if previous is not None:
                prev_shard = (previous[0].get("backends") or {}).get(name)
                if prev_shard is not None:
                    shard_qps = _fleet_rate(
                        shard, (prev_shard, previous[1]), telemetry.QUERIES_TOTAL
                    )
            shard_registry = MetricsRegistry.from_snapshot(shard)
            p95 = float("nan")
            if (shard.get("histograms") or {}).get(telemetry.QUERY_SECONDS):
                p95 = shard_registry.get(
                    telemetry.QUERY_SECONDS
                ).percentile(95) * 1e3
            unconverged = _fleet_counter(shard, telemetry.QUERIES_UNCONVERGED)
            lines.append(
                f"  {name:<24} {queries:>10.0f} "
                f"{(f'{shard_qps:.1f}' if shard_qps is not None else '-'):>8} "
                f"{p95:>9.2f} {unconverged:>12.0f}  "
                f"{generations.get(name) or '-'}"
            )

    if slow:
        lines.append("")
        lines.append("  recent slow queries")
        for entry in list(slow)[-5:]:
            tags = entry.get("tags") or {}
            tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
            lines.append(
                f"    {entry.get('trace_id')} {entry.get('name')} "
                f"{float(entry.get('duration', 0.0)) * 1e3:.1f}ms "
                f"{tag_text} ({len(entry.get('spans') or [])} spans)"
            )
    return "\n".join(lines) + "\n"


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top TARGET`` — live terminal view of a serving fleet.

    A gateway mid-restart (or briefly unreachable) must not kill the
    dashboard with a traceback: transport failures render a
    ``reconnecting…`` banner and the fetch retries with capped backoff.
    ``--once`` keeps the old fail-fast contract for scripts.
    """
    import time

    from repro import wire
    from repro.exceptions import InvalidParameterError

    try:
        # A malformed TARGET is a usage error, not an outage — fail fast
        # before entering the reconnect loop.
        if not os.path.exists(args.target):
            from repro.gateway import parse_endpoint

            parse_endpoint(args.target)
    except InvalidParameterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    frames = 1 if args.once else args.frames
    previous = None
    rendered = 0
    attempts = 0
    while True:
        started = time.perf_counter()
        try:
            snapshot = _fetch_fleet(args.target)
        except (OSError, ValueError, wire.ProtocolError) as error:
            if args.once:
                print(f"error: cannot fetch fleet snapshot from "
                      f"{args.target}: {error}", file=sys.stderr)
                return 2
            attempts += 1
            delay = min(
                max(args.interval, 0.1) * min(2 ** (attempts - 1), 8), 10.0
            )
            print(f"reconnecting to {args.target} "
                  f"(attempt {attempts}, retry in {delay:.1f}s): {error}",
                  file=sys.stderr)
            time.sleep(delay)
            continue
        attempts = 0
        page = render_fleet(snapshot, previous)
        if rendered and not args.no_clear:
            # ANSI home + clear-below keeps the page steady between frames.
            sys.stdout.write("\x1b[H\x1b[J")
        sys.stdout.write(page)
        sys.stdout.flush()
        rendered += 1
        if frames is not None and rendered >= frames:
            return 0
        time.sleep(max(0.0, args.interval))
        previous = (snapshot, time.perf_counter() - started)


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    runner = ExperimentRunner(n_queries=args.queries, seed=0)
    factories = {
        name.upper() if name in ("lu", "gmres") else name.capitalize():
            (lambda cls=cls: cls(c=args.c, tol=args.tol))
        for name, cls in _METHODS.items()
        if name in args.methods.split(",")
    }
    records = [
        runner.run(args.graph, graph, factory, method_name=name)
        for name, factory in factories.items()
    ]
    print(format_records(records))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    import os

    from repro import datasets, save_edge_list

    print(f"{'name':<18} {'stands in for':<12} {'k':>5}  description")
    for name in datasets.names():
        spec = datasets.get(name)
        print(f"{spec.name:<18} {spec.paper_name:<12} {spec.hub_ratio:>5.2f}  "
              f"{spec.description}")
    if args.export:
        os.makedirs(args.export, exist_ok=True)
        for name in datasets.names():
            graph = datasets.build(name)
            destination = os.path.join(args.export, f"{name}.tsv")
            save_edge_list(
                graph, destination,
                header=f"stand-in for {datasets.get(name).paper_name} "
                       f"(BePI SIGMOD'17 reproduction)",
            )
            print(f"exported {name} -> {destination} "
                  f"({graph.n_nodes:,} nodes, {graph.n_edges:,} edges)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BePI (SIGMOD 2017) — Random Walk with Restart toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics")
    p_stats.add_argument("graph", help="edge-list file")
    p_stats.set_defaults(func=_cmd_stats)

    p_pre = sub.add_parser("preprocess", help="preprocess and save a solver")
    p_pre.add_argument("graph", help="edge-list file")
    p_pre.add_argument("-o", "--output", required=True, help="output .npz path")
    _add_solver_options(p_pre)
    p_pre.set_defaults(func=_cmd_preprocess)

    p_build = sub.add_parser(
        "build", help="preprocess and export a serving artifact directory"
    )
    p_build.add_argument("graph", help="edge-list file")
    p_build.add_argument("-o", "--output", required=True,
                         help="artifact directory (or store root with --store)")
    p_build.add_argument("--store", action="store_true",
                         help="treat OUTPUT as an ArtifactStore root and "
                              "publish a new generation atomically")
    p_build.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write the build's telemetry snapshot (JSON)")
    _add_solver_options(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_serve = sub.add_parser(
        "serve", help="answer seed batches from mmap-backed worker processes"
    )
    p_serve.add_argument("artifacts", help="artifact directory or store root")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes (default: 2)")
    p_serve.add_argument("--seeds", default=None,
                         help="comma-separated seed node ids")
    p_serve.add_argument("--random", type=int, default=None, metavar="K",
                         help="answer K random seeds instead of --seeds")
    p_serve.add_argument("--top", type=int, default=5,
                         help="ranking size printed per seed (default: 5)")
    p_serve.add_argument("--linger", type=float, default=None, metavar="SECONDS",
                         help="keep serving, re-running the batch every SECONDS, "
                              "until SIGTERM/SIGINT (graceful drain, exit 0)")
    p_serve.add_argument("--fault-plan", metavar="PATH", default=None,
                         help="JSON fault-injection plan shipped to the workers "
                              "(see repro.faults; chaos testing only)")
    p_serve.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="keep a merged worker-metrics snapshot (JSON) "
                              "fresh at PATH")
    p_serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                         help="serve the pool over the wire protocol instead "
                              "of answering a local batch (one shard of a "
                              "gateway tier; runs until SIGTERM/SIGINT)")
    p_serve.add_argument("--shed-depth", type=int, default=None, metavar="N",
                         help="with --listen: answer REPLY_OVERLOADED when "
                              "more than N requests are queued "
                              "(default: queue unboundedly)")
    _add_tracing_options(p_serve)
    p_serve.add_argument("--follow-store", type=float, default=None,
                         metavar="SECONDS",
                         help="poll the store's current pointer every SECONDS "
                              "and hot-swap the workers onto newly published "
                              "generations, printing each swap (with --linger "
                              "or --listen)")
    p_serve.set_defaults(func=_cmd_serve)

    p_update = sub.add_parser(
        "update",
        help="apply edge-update batches to a store's current generation",
    )
    p_update.add_argument("store", help="ArtifactStore root (see build --store)")
    p_update.add_argument("--add", metavar="U:V[:W]", action="append", default=[],
                          help="insert edge U->V (weight W sets it; repeatable)")
    p_update.add_argument("--remove", metavar="U:V", action="append", default=[],
                          help="delete edge U->V (repeatable)")
    p_update.add_argument("--random-batch", type=int, default=None, metavar="K",
                          help="instead of --add/--remove: stream batches of K "
                               "random edge insertions")
    p_update.add_argument("--batches", type=int, default=1, metavar="N",
                          help="number of random batches to stream (default: 1)")
    p_update.add_argument("--batch-seed", type=int, default=0,
                          help="RNG seed for --random-batch (default: 0)")
    p_update.add_argument("--error-bound", type=float, default=0.0, metavar="B",
                          help="largest tracked L1 error bound an incremental "
                               "correction may carry before falling back to a "
                               "full re-preprocess (default: 0.0 — exact only)")
    p_update.add_argument("--full", action="store_true",
                          help="skip the incremental path and re-preprocess "
                               "from scratch")
    p_update.add_argument("--n-jobs", type=int, default=1,
                          help="worker threads for block refactorization")
    p_update.add_argument("--prune", type=int, default=None, metavar="KEEP",
                          help="afterwards, prune to the newest KEEP "
                               "generations (current and leased ones are "
                               "never deleted)")
    p_update.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write the run's telemetry snapshot (JSON), "
                               "including the rwr.dynamic.* series")
    p_update.set_defaults(func=_cmd_update)

    p_gw = sub.add_parser(
        "gateway",
        help="coalescing/shedding front door over serve --listen backends",
    )
    p_gw.add_argument("--listen", metavar="HOST:PORT", required=True,
                      help="address the gateway accepts wire clients on")
    p_gw.add_argument("--backend", metavar="HOST:PORT", action="append",
                      default=[],
                      help="a repro serve --listen endpoint (repeat for "
                           "replicas/shards)")
    p_gw.add_argument("--artifacts", metavar="DIR", default=None,
                      help="also run an in-process worker pool over this "
                           "artifact directory as a local backend")
    p_gw.add_argument("--workers", type=int, default=2,
                      help="worker processes for --artifacts (default: 2)")
    p_gw.add_argument("--coalesce-window", type=float, default=None,
                      metavar="SECONDS",
                      help="coalescing window for concurrent single-seed "
                           "requests (default: 0.002)")
    p_gw.add_argument("--max-pending", type=int, default=None, metavar="N",
                      help="in-flight requests admitted before shedding "
                           "(default: 1024)")
    p_gw.add_argument("--shed-depth", type=int, default=None, metavar="N",
                      help="also shed when every live backend reports a "
                           "queue deeper than N (default: disabled)")
    p_gw.add_argument("--breaker-threshold", type=int, default=None,
                      metavar="N",
                      help="consecutive transport failures before a "
                           "backend's circuit breaker opens (default: 3)")
    p_gw.add_argument("--breaker-reset", type=float, default=None,
                      metavar="SECONDS",
                      help="seconds before an open breaker allows its "
                           "half-open probe (default: 2.0)")
    p_gw.add_argument("--failover-cooldown", type=float, default=None,
                      metavar="SECONDS",
                      help="seconds a failed backend is deprioritized in "
                           "failover chains (default: 2.0)")
    p_gw.add_argument("--health-interval", type=float, default=None,
                      metavar="SECONDS",
                      help="seconds between background backend health "
                           "polls; 0 disables the monitor so the only "
                           "wire traffic is request-driven "
                           "(default: 1.0)")
    p_gw.add_argument("--deadline-ms", type=float, default=None,
                      metavar="MS",
                      help="default per-request budget applied to requests "
                           "that do not carry a deadline trailer "
                           "(default: unbounded)")
    p_gw.add_argument("--hedge-after", default=None, metavar="SPEC",
                      help="hedge a slow backend call to the next replica "
                           "after SPEC: seconds (e.g. 0.05) or a latency "
                           "percentile like p95 (default: disabled)")
    p_gw.add_argument("--degrade", nargs="?", const="", default=None,
                      metavar="PATH",
                      help="serve degraded Monte-Carlo answers from these "
                           "artifacts when replicas are down or the "
                           "deadline is nearly spent (no PATH: reuse "
                           "--artifacts)")
    p_gw.add_argument("--degrade-walks", type=int, default=20_000,
                      metavar="N",
                      help="Monte-Carlo walks per degraded answer "
                           "(default: 20000)")
    p_gw.add_argument("--fault-plan", metavar="PATH", default=None,
                      help="inject network faults from a JSON fault plan "
                           "into the gateway's wire transports (chaos "
                           "drills)")
    _add_tracing_options(p_gw)
    p_gw.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="keep the gateway telemetry snapshot (JSON) "
                           "fresh at PATH")
    p_gw.set_defaults(func=_cmd_gateway)

    p_top = sub.add_parser(
        "top", help="live terminal view of a serving fleet"
    )
    p_top.add_argument("target",
                       help="gateway (or pool server) HOST:PORT answered via "
                            "OP_METRICS, or a fleet/metrics JSON file")
    p_top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                       help="refresh period (default %(default)s)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    p_top.add_argument("--frames", type=int, default=None, metavar="N",
                       help="render N frames and exit (default: forever)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of redrawing in place")
    p_top.set_defaults(func=_cmd_top)

    p_query = sub.add_parser("query", help="top-k RWR ranking for a seed")
    p_query.add_argument("graph", help="edge-list file, saved solver (.npz), "
                                       "or artifact directory")
    p_query.add_argument("--seed", type=int, required=True, help="seed node id")
    p_query.add_argument("--top", type=int, default=10, help="ranking size")
    p_query.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write the query run's telemetry snapshot (JSON)")
    _add_solver_options(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_cmp = sub.add_parser("compare", help="compare methods on one graph")
    p_cmp.add_argument("graph", help="edge-list file")
    p_cmp.add_argument("--methods", default="bepi,gmres,power",
                       help="comma-separated method list")
    p_cmp.add_argument("--queries", type=int, default=10,
                       help="random queries per method")
    p_cmp.add_argument("--c", type=float, default=0.05)
    p_cmp.add_argument("--tol", type=float, default=1e-9)
    p_cmp.set_defaults(func=_cmd_compare)

    p_ds = sub.add_parser("datasets", help="list built-in stand-in datasets")
    p_ds.add_argument("--export", metavar="DIR", default=None,
                      help="also write every dataset as an edge list into DIR")
    p_ds.set_defaults(func=_cmd_datasets)

    p_metrics = sub.add_parser(
        "metrics", help="render a telemetry snapshot written by --metrics-out"
    )
    p_metrics.add_argument("snapshot",
                           help="snapshot file, or a directory containing "
                                "metrics.json")
    p_metrics.add_argument("--format", choices=("summary", "json", "prometheus"),
                           default="summary",
                           help="output format (default: summary)")
    p_metrics.set_defaults(func=_cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
