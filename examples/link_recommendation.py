#!/usr/bin/env python
"""Link recommendation on a social-network stand-in.

The paper motivates RWR with friend recommendation (Figure 2): rank
non-neighbors of a user by their RWR score.  This example holds out 15% of
the edges, recommends links from the training graph, and reports AUC — the
probability that a true held-out friendship outranks a random non-edge.

Run:  python examples/link_recommendation.py
"""

import numpy as np

from repro import BePI
from repro.applications import (
    evaluate_link_prediction,
    recommend_links,
    sample_negative_edges,
    split_edges,
)
from repro.datasets import build


def main() -> None:
    graph = build("hepph_sim")  # co-authorship style network
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges")

    train, test_edges = split_edges(graph, holdout_fraction=0.15, seed=1)
    negatives = sample_negative_edges(graph, test_edges.shape[0], seed=2)
    print(f"held out {test_edges.shape[0]:,} edges, "
          f"sampled {negatives.shape[0]:,} negatives")

    solver = BePI(c=0.05, tol=1e-9).preprocess(train)
    print(f"preprocessed training graph in "
          f"{solver.stats['preprocess_seconds']:.3f}s")

    # --- Qualitative: recommendations for an active user -----------------
    user = int(np.argmax(train.out_degrees()))
    print(f"\ntop recommendations for node {user} "
          f"(out-degree {train.out_degrees()[user]}):")
    for node, score in recommend_links(solver, user, k=5):
        print(f"  node {node:5d}  score {score:.6f}")

    # --- Quantitative: AUC over held-out edges ---------------------------
    evaluation = evaluate_link_prediction(
        solver, test_edges, negatives, max_sources=40, seed=3
    )
    print(f"\nlink prediction AUC: {evaluation.auc:.3f} "
          f"({evaluation.n_positive} positives vs "
          f"{evaluation.n_negative} negatives; 0.5 = random guessing)")


if __name__ == "__main__":
    main()
