#!/usr/bin/env python
"""Quickstart: compute Random Walk with Restart scores with BePI.

Builds a skewed synthetic graph, preprocesses it once, and answers RWR
queries — the workflow of Figure 2 in the paper (personalized ranking for
a query node).  Also shows the three solver variants and what their
preprocessing trades off.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BePI, BePIB, BePIS, add_deadends, generate_rmat


def main() -> None:
    # A power-law ("hub-and-spoke") graph with 4,096 nodes and some deadends,
    # the structure BePI's reordering exploits.
    graph = add_deadends(generate_rmat(12, 30_000, seed=7), 0.1, seed=8)
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges, "
          f"{int(graph.deadend_mask().sum()):,} deadends")

    # --- Preprocess once ------------------------------------------------
    solver = BePI(c=0.05, tol=1e-9, hub_ratio=0.2)
    solver.preprocess(graph)
    print(f"\npreprocessing took {solver.stats['preprocess_seconds']:.3f}s, "
          f"retains {solver.memory_bytes() / 1e6:.2f} MB")
    print(f"partition: n1={solver.stats['n1']} spokes, "
          f"n2={solver.stats['n2']} hubs, n3={solver.stats['n3']} deadends "
          f"in {solver.stats['n_blocks']} diagonal blocks")

    # --- Query any number of seeds cheaply ------------------------------
    seed = 42
    result = solver.query_detailed(seed)
    print(f"\nquery for seed {seed}: {result.seconds * 1e3:.2f} ms, "
          f"{result.iterations} GMRES iterations")

    top = np.argsort(-result.scores)[:6]
    print(f"personalized ranking for node {seed}:")
    for rank, node in enumerate(top, start=1):
        marker = "  (the seed itself)" if node == seed else ""
        print(f"  {rank}. node {node:5d}  score {result.scores[node]:.6f}{marker}")

    # --- Variant comparison ----------------------------------------------
    print("\nvariant comparison (same graph, same queries):")
    print(f"{'variant':8s} {'preproc(s)':>10s} {'memory(MB)':>11s} "
          f"{'query(ms)':>10s} {'iters':>6s}")
    for cls in (BePIB, BePIS, BePI):
        variant = cls(c=0.05, tol=1e-9).preprocess(graph)
        q = variant.query_detailed(seed)
        print(f"{variant.name:8s} {variant.stats['preprocess_seconds']:>10.3f} "
              f"{variant.memory_bytes() / 1e6:>11.2f} {q.seconds * 1e3:>10.2f} "
              f"{q.iterations:>6d}")


if __name__ == "__main__":
    main()
