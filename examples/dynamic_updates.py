#!/usr/bin/env python
"""Serving RWR on an evolving graph with batch re-preprocessing.

Section 5 of the paper: the conventional strategy for preprocessing
methods on dynamic graphs is to buffer updates and re-preprocess in
batches, and BePI suits it because its preprocessing is fast.  This
example simulates a day of social-network activity: edges arrive, queries
are served from the last snapshot, and the index is rebuilt at the batch
threshold.  Solver persistence rounds out the workflow — the rebuilt index
is saved for the next serving process.

Run:  python examples/dynamic_updates.py
"""

import tempfile
import time

import numpy as np

from repro import BePI, generate_rmat, load_solver, save_solver
from repro.core.dynamic import DynamicRWR


def main() -> None:
    graph = generate_rmat(11, 16_000, seed=13)
    print(f"initial graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges")

    dynamic = DynamicRWR(
        graph,
        solver_factory=lambda: BePI(c=0.05, tol=1e-9),
        auto_rebuild_threshold=500,
    )
    rng = np.random.default_rng(0)
    user = 42
    baseline_top = np.argsort(-dynamic.query(user))[:5]
    print(f"top-5 for user {user} before updates: {baseline_top.tolist()}")

    # --- A stream of edge insertions (new follows) -----------------------
    start = time.perf_counter()
    for batch in range(4):
        src = rng.integers(graph.n_nodes, size=300)
        dst = rng.integers(graph.n_nodes, size=300)
        dynamic.add_edges(
            (int(u), int(v)) for u, v in zip(src, dst) if u != v
        )
        print(f"batch {batch + 1}: pending={dynamic.pending_updates}, "
              f"rebuilds so far={dynamic.n_rebuilds}")
    dynamic.rebuild()  # flush the tail of the stream
    elapsed = time.perf_counter() - start
    print(f"\nprocessed ~1,200 updates with {dynamic.n_rebuilds - 1} rebuilds "
          f"in {elapsed:.2f}s")

    updated_top = np.argsort(-dynamic.query(user))[:5]
    print(f"top-5 for user {user} after updates:  {updated_top.tolist()}")

    # --- Persist the fresh index for the next serving process ------------
    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as handle:
        path = handle.name
    save_solver(dynamic.solver, path)
    served = load_solver(path)
    same = np.allclose(served.query(user), dynamic.query(user))
    print(f"\nsaved index to {path}; reloaded copy answers identically: {same}")


if __name__ == "__main__":
    main()
