#!/usr/bin/env python
"""Choosing the GMRES tolerance from a target accuracy (Theorem 4).

BePI is exact up to the iterative tolerance ``eps``, and Theorem 4 bounds
the end-to-end score error in terms of ``eps`` and spectral quantities of
the preprocessed blocks.  The paper's closing inequality of Section 3.6.3
lets you *back-solve*: pick a target error ``eps_T`` on the score vector
and obtain the tolerance that guarantees it.

This example computes the bound's ingredients on a small graph, verifies
the guarantee against the dense-inverse oracle, and shows how pessimistic
the bound is in practice (bounds are worst-case; typical errors are much
smaller).

Run:  python examples/accuracy_control.py
"""

import numpy as np

from repro import BePI, DenseSolver, accuracy_bound, generate_rmat


def main() -> None:
    graph = generate_rmat(9, 3500, seed=17)
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges")

    oracle = DenseSolver(c=0.05).preprocess(graph)
    probe = BePI(c=0.05, tol=1e-3).preprocess(graph)

    seed = 7
    bound = accuracy_bound(probe, seed)
    print("\nTheorem 4 ingredients for this graph and seed:")
    print(f"  alpha = ||H12|| / sigma_min(H11)   = {bound.alpha:.4f}")
    print(f"  sigma_min(S)                       = {bound.sigma_min_schur:.4f}")
    print(f"  ||H31|| = {bound.norm_h31:.4f}   ||H32|| = {bound.norm_h32:.4f}")
    print(f"  ||q2~|| = {bound.q2_tilde_norm:.4f}")
    print(f"  bound factor                       = {bound.factor:.4f}")

    print(f"\n{'tol':>9} {'guaranteed error':>17} {'actual error':>13} {'slack':>8}")
    for tol in (1e-3, 1e-5, 1e-7, 1e-9):
        solver = BePI(c=0.05, tol=tol).preprocess(graph)
        actual = float(np.linalg.norm(solver.query(seed) - oracle.query(seed)))
        guaranteed = bound.error_bound(tol)
        slack = guaranteed / actual if actual > 0 else float("inf")
        print(f"{tol:>9.0e} {guaranteed:>17.3e} {actual:>13.3e} {slack:>8.1f}x")

    target = 1e-8
    eps = bound.tolerance_for(target)
    solver = BePI(c=0.05, tol=eps).preprocess(graph)
    actual = float(np.linalg.norm(solver.query(seed) - oracle.query(seed)))
    print(f"\ntarget error {target:.0e} -> back-solved tolerance {eps:.3e}")
    print(f"achieved error {actual:.3e}  (guarantee holds: {actual <= target})")


if __name__ == "__main__":
    main()
