#!/usr/bin/env python
"""Local community detection with RWR + conductance sweep.

Plants four dense communities connected by sparse bridges, seeds the
detector inside one of them, and checks the sweep cut recovers the planted
block — the Andersen-Chung-Lang use case the paper cites.

Run:  python examples/community_detection.py
"""

import numpy as np

from repro import BePI, Graph
from repro.applications import conductance, local_community


def planted_partition(n_blocks=4, block_size=30, p_in=0.35, p_out=0.004, seed=0):
    """Directed planted-partition graph: dense blocks, sparse cross edges."""
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    block_of = np.repeat(np.arange(n_blocks), block_size)
    edges = []
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            p = p_in if block_of[u] == block_of[v] else p_out
            if rng.random() < p:
                edges.append((u, v))
    return Graph.from_edges(edges, n_nodes=n), block_of


def main() -> None:
    graph, block_of = planted_partition(seed=11)
    print(f"planted-partition graph: {graph.n_nodes} nodes, "
          f"{graph.n_edges:,} edges, 4 blocks of 30")

    solver = BePI(c=0.05, tol=1e-10, hub_ratio=0.3).preprocess(graph)

    seed_node = 5  # inside block 0
    community = local_community(solver, seed=seed_node)
    members = set(community.members.tolist())
    truth = set(np.flatnonzero(block_of == block_of[seed_node]).tolist())

    precision = len(members & truth) / len(members)
    recall = len(members & truth) / len(truth)
    print(f"\nseed node {seed_node} (block {block_of[seed_node]}):")
    print(f"  detected community size : {len(members)}")
    print(f"  conductance             : {community.conductance:.4f}")
    print(f"  precision / recall      : {precision:.2f} / {recall:.2f}")

    whole_block_phi = conductance(graph, np.array(sorted(truth)))
    print(f"  planted block conductance: {whole_block_phi:.4f}")

    print("\nsweep curve (conductance of the first k nodes by normalized score):")
    sweep = community.sweep_conductances
    for k in (5, 10, 20, 30, 40, 60):
        if k <= sweep.size:
            marker = "  <- minimum region" if abs(k - len(members)) <= 5 else ""
            print(f"  k={k:3d}  phi={sweep[k - 1]:.4f}{marker}")


if __name__ == "__main__":
    main()
