#!/usr/bin/env python
"""Amortizing preprocessing over many queries (the paper's core trade-off).

Iterative methods pay the full solve per query; preprocessing methods pay
once and answer queries cheaply.  This example simulates a ranking service
answering a batch of queries and reports when BePI's preprocessing pays for
itself against GMRES and power iteration (cf. Figure 12, total time).

Run:  python examples/query_server.py
"""

import time

import numpy as np

from repro import BePI, GMRESSolver, PowerSolver
from repro.datasets import build


def measure(solver, graph, seeds):
    start = time.perf_counter()
    solver.preprocess(graph)
    preprocess = time.perf_counter() - start
    per_query = []
    for seed in seeds:
        result = solver.query_detailed(int(seed))
        per_query.append(result.seconds)
    return preprocess, float(np.mean(per_query))


def main() -> None:
    graph = build("baidu_sim")
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges")
    rng = np.random.default_rng(0)
    seeds = rng.choice(graph.n_nodes, size=20, replace=False)

    rows = {}
    for factory in (lambda: BePI(tol=1e-9),
                    lambda: GMRESSolver(tol=1e-9),
                    lambda: PowerSolver(tol=1e-9)):
        solver = factory()
        preprocess, query = measure(solver, graph, seeds)
        rows[solver.name] = (preprocess, query)
        print(f"{solver.name:6s}: preprocess {preprocess:8.3f}s, "
              f"avg query {query * 1e3:8.2f} ms")

    bepi_pre, bepi_q = rows["BePI"]
    print("\nbreak-even query counts (when BePI's total time wins):")
    for name in ("GMRES", "Power"):
        _, other_q = rows[name]
        if other_q <= bepi_q:
            print(f"  vs {name}: never (baseline queries are not slower here)")
            continue
        breakeven = int(np.ceil(bepi_pre / (other_q - bepi_q)))
        print(f"  vs {name}: {breakeven} queries")

    for n_queries in (1, 10, 100, 1000):
        line = ", ".join(
            f"{name} {pre + q * n_queries:8.2f}s"
            for name, (pre, q) in rows.items()
        )
        print(f"  total for {n_queries:5d} queries: {line}")


if __name__ == "__main__":
    main()
