#!/usr/bin/env python
"""Mini scalability study (a laptop-scale Figure 5).

Takes principal submatrices of the largest stand-in graph and measures
BePI's preprocessing time, preprocessed-data memory, and query time as the
edge count grows, fitting log-log slopes.  The paper reports slopes of
1.01 / 0.99 / 1.1 — near-linear scaling.

Run:  python examples/scaling_demo.py
"""

import numpy as np

from repro import BePI
from repro.datasets import build


def main() -> None:
    base = build("wikilink_sim")
    print(f"base graph: {base.n_nodes:,} nodes, {base.n_edges:,} edges\n")

    fractions = (0.125, 0.25, 0.5, 1.0)
    edges, pre_times, memories, query_times = [], [], [], []
    rng = np.random.default_rng(0)

    print(f"{'nodes':>8s} {'edges':>9s} {'preproc(s)':>11s} "
          f"{'memory(MB)':>11s} {'query(ms)':>10s}")
    for fraction in fractions:
        size = int(base.n_nodes * fraction)
        graph = base.principal_submatrix(size)
        if graph.n_edges == 0:
            continue
        solver = BePI(c=0.05, tol=1e-9).preprocess(graph)
        seeds = rng.choice(graph.n_nodes, size=10, replace=False)
        q_times = [solver.query_detailed(int(s)).seconds for s in seeds]
        edges.append(graph.n_edges)
        pre_times.append(solver.stats["preprocess_seconds"])
        memories.append(solver.memory_bytes())
        query_times.append(float(np.mean(q_times)))
        print(f"{graph.n_nodes:>8,} {graph.n_edges:>9,} {pre_times[-1]:>11.3f} "
              f"{memories[-1] / 1e6:>11.2f} {query_times[-1] * 1e3:>10.2f}")

    log_edges = np.log(edges)
    for label, series in (("preprocessing time", pre_times),
                          ("memory", memories),
                          ("query time", query_times)):
        slope = np.polyfit(log_edges, np.log(series), 1)[0]
        print(f"\nlog-log slope of {label} vs edges: {slope:.2f} "
              f"(paper: ~1, near-linear)")


if __name__ == "__main__":
    main()
