#!/usr/bin/env python
"""Anomaly detection on a bipartite ratings graph (Sun et al., cited [39]).

Builds an (undirected) user-item graph with two well-separated communities
plus a handful of "bridge" items rated from both sides.  Items whose
co-raters are unrelated under RWR receive high anomaly scores.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro import BePI, Graph
from repro.applications import anomaly_scores


def ratings_graph(n_users_per_side=25, n_items_per_side=15, ratings_per_user=6,
                  n_bridge_items=3, seed=0):
    """Two user-item communities plus bridge items rated by both."""
    rng = np.random.default_rng(seed)
    n_users = 2 * n_users_per_side
    n_items = 2 * n_items_per_side + n_bridge_items
    edges = []
    for user in range(n_users):
        side = user // n_users_per_side
        base = n_users + side * n_items_per_side
        items = rng.choice(n_items_per_side, size=ratings_per_user, replace=False)
        for item in items:
            edges.append((user, base + int(item)))
    bridge_start = n_users + 2 * n_items_per_side
    for b in range(n_bridge_items):
        raters = rng.choice(n_users, size=4, replace=False)
        for user in raters:
            edges.append((int(user), bridge_start + b))
    edges += [(v, u) for u, v in edges]  # undirected bipartite walk
    return Graph.from_edges(edges, n_nodes=n_users + n_items), bridge_start


def main() -> None:
    graph, bridge_start = ratings_graph(seed=3)
    n_users = 50
    print(f"bipartite ratings graph: {graph.n_nodes} nodes "
          f"({n_users} users, {graph.n_nodes - n_users} items)")

    solver = BePI(c=0.05, tol=1e-9, hub_ratio=0.3).preprocess(graph)

    item_ids = range(n_users, graph.n_nodes)
    scores = anomaly_scores(solver, item_ids, seed=1)

    ranked = sorted(scores.items(), key=lambda kv: -kv[1])
    print("\nmost anomalous items (bridge items marked *):")
    for item, score in ranked[:8]:
        marker = " *" if item >= bridge_start else ""
        print(f"  item {item:3d}  anomaly {score:.3f}{marker}")

    bridge = [scores[i] for i in range(bridge_start, graph.n_nodes)]
    normal = [scores[i] for i in range(n_users, bridge_start)]
    print(f"\nmean anomaly: bridge items {np.mean(bridge):.3f} "
          f"vs normal items {np.mean(normal):.3f}")
    top3 = {item for item, _score in ranked[:3]}
    found = len([i for i in top3 if i >= bridge_start])
    print(f"bridge items in the top 3: {found} of 3")


if __name__ == "__main__":
    main()
