#!/usr/bin/env python
"""Exact vs approximate RWR: when is "close enough" actually close?

The paper's evaluation deliberately excludes approximate methods — every
compared solver computes exact scores.  This example shows why that
matters: it runs the two classic approximate approaches from the related
work (NB_LIN low-rank preprocessing and Monte-Carlo walk simulation)
against exact BePI, comparing L2 error, top-10 retrieval and rank
correlation on the same queries.

Run:  python examples/approximate_methods.py
"""

import numpy as np

from repro import BePI, NBLinSolver
from repro.applications import precision_at_k, spearman_rho
from repro.approximate import MonteCarloSolver
from repro.datasets import build


def main() -> None:
    graph = build("baidu_sim")
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges")

    exact = BePI(c=0.05, tol=1e-9).preprocess(graph)
    contenders = {
        "NB_LIN (rank 20)": NBLinSolver(rank=20).preprocess(graph),
        "NB_LIN (rank 100)": NBLinSolver(rank=100).preprocess(graph),
        "Monte Carlo (10k walks)": MonteCarloSolver(n_walks=10_000, seed=1).preprocess(graph),
        "Monte Carlo (100k walks)": MonteCarloSolver(n_walks=100_000, seed=1).preprocess(graph),
    }

    rng = np.random.default_rng(0)
    seeds = rng.choice(np.flatnonzero(~graph.deadend_mask()), size=5, replace=False)

    print(f"\n{'method':<26} {'mean L2 err':>12} {'precision@10':>13} "
          f"{'spearman':>9} {'memory(MB)':>11}")
    reference = {int(s): exact.query(int(s)) for s in seeds}
    for name, solver in contenders.items():
        errs, precs, rhos = [], [], []
        for s in seeds:
            scores = solver.query(int(s))
            ref = reference[int(s)]
            errs.append(np.linalg.norm(scores - ref))
            precs.append(precision_at_k(ref, scores, 10))
            rhos.append(spearman_rho(ref, scores))
        print(f"{name:<26} {np.mean(errs):>12.3e} {np.mean(precs):>13.2f} "
              f"{np.mean(rhos):>9.3f} {solver.memory_bytes() / 1e6:>11.2f}")

    print(f"\n{'BePI (exact)':<26} {'0':>12} {'1.00':>13} {'1.000':>9} "
          f"{exact.memory_bytes() / 1e6:>11.2f}")
    print("\nTakeaway: the approximations spend comparable (or more) memory "
          "than exact BePI\nand still miss part of the top-10 — the gap the "
          "paper's exact hybrid closes.")


if __name__ == "__main__":
    main()
